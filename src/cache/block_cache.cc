#include "cache/block_cache.h"

#include <array>
#include <atomic>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "telemetry/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace primacy {
namespace internal {
namespace {

/// Per-shard-index telemetry series, resolved once per index and shared by
/// every cache instance in the process (series aggregate across caches —
/// the gauge is updated with deltas, never Set). Same leaked-instance idiom
/// as PoolMetrics::ForName: registry references must outlive every cache.
struct CacheShardMetrics {
  telemetry::Counter& hits;
  telemetry::Counter& misses;
  telemetry::Counter& evictions;
  telemetry::Gauge& bytes;

  static CacheShardMetrics* ForShard(std::size_t shard) {
    static std::mutex mutex;
    static std::unordered_map<std::size_t, CacheShardMetrics*>* instances =
        new std::unordered_map<std::size_t, CacheShardMetrics*>();
    std::lock_guard<std::mutex> lock(mutex);
    auto it = instances->find(shard);
    if (it != instances->end()) return it->second;
    const std::string labels = "shard=\"" + std::to_string(shard) + "\"";
    auto& registry = telemetry::MetricsRegistry::Global();
    auto* metrics = new CacheShardMetrics{
        registry.GetCounter("primacy_cache_hits_total", labels),
        registry.GetCounter("primacy_cache_misses_total", labels),
        registry.GetCounter("primacy_cache_evictions_total", labels),
        registry.GetGauge("primacy_cache_bytes", labels),
    };
    instances->emplace(shard, metrics);
    return metrics;
  }
};

/// Unlabeled cross-shard series: the hit-ratio gauge (percent, aggregated
/// over every cache in the process) and the fill/evict latency histograms.
struct CacheGlobalMetrics {
  telemetry::Gauge& hit_ratio_pct;
  telemetry::Histogram& fill_us;
  telemetry::Histogram& evict_us;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};

  static CacheGlobalMetrics& Get() {
    static constexpr std::array<double, 7> kLatencyBoundsUs = {
        10.0, 100.0, 1000.0, 10000.0, 100000.0, 1e6, 1e7};
    auto& registry = telemetry::MetricsRegistry::Global();
    static CacheGlobalMetrics* metrics = new CacheGlobalMetrics{
        registry.GetGauge("primacy_cache_hit_ratio_pct"),
        registry.GetHistogram("primacy_cache_fill_us", kLatencyBoundsUs),
        registry.GetHistogram("primacy_cache_evict_us", kLatencyBoundsUs),
    };
    return *metrics;
  }

  void RecordLookup(bool hit) {
    const std::uint64_t h =
        hits.fetch_add(hit ? 1 : 0, std::memory_order_relaxed) + (hit ? 1 : 0);
    const std::uint64_t m =
        misses.fetch_add(hit ? 0 : 1, std::memory_order_relaxed) +
        (hit ? 0 : 1);
    hit_ratio_pct.Set(
        static_cast<std::int64_t>((100 * h) / (h + m)));  // h + m >= 1
  }
};

/// 64-bit mix (splitmix64 finalizer) — drives both shard selection and the
/// in-shard hash table so neither degrades on sequential chunk indexes.
std::uint64_t MixKey(std::uint64_t stream_id, std::uint64_t chunk_index) {
  std::uint64_t x = stream_id ^ (chunk_index * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

struct CacheKey {
  std::uint64_t stream_id = 0;
  std::uint64_t chunk_index = 0;

  bool operator==(const CacheKey& other) const {
    return stream_id == other.stream_id && chunk_index == other.chunk_index;
  }
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    return static_cast<std::size_t>(MixKey(key.stream_id, key.chunk_index));
  }
};

}  // namespace

struct CacheEntry {
  std::uint64_t stream_id = 0;
  std::uint64_t chunk_index = 0;
  Bytes data;
  /// Outstanding Handles; guarded by the OWNING SHARD's mutex (a cross-
  /// object guard the analysis cannot express — entries live inside the
  /// shard's list, so every access already sits in a shard.mutex section).
  /// A pinned entry is never evicted (and std::list nodes never move), so
  /// Handle::data() stays valid without holding the lock.
  std::uint32_t pins = 0;
};

struct CacheShard {
  mutable primacy::Mutex mutex;
  /// front = most recently used. Erasure skips pinned entries.
  std::list<CacheEntry> lru PRIMACY_GUARDED_BY(mutex);
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
      index PRIMACY_GUARDED_BY(mutex);
  std::size_t bytes PRIMACY_GUARDED_BY(mutex) = 0;
  CacheStatsSnapshot stats PRIMACY_GUARDED_BY(mutex);
  // Resolved once at construction, then immutable (null when telemetry is
  // off); the Counter/Gauge sinks themselves are atomics.
  CacheShardMetrics* metrics = nullptr;
};

}  // namespace internal

ByteSpan DecodedBlockCache::Handle::data() const { return entry_->data; }

void DecodedBlockCache::Handle::Release() {
  if (entry_ == nullptr) return;
  primacy::MutexLock lock(shard_->mutex);
  --entry_->pins;
  entry_ = nullptr;
  shard_ = nullptr;
}

DecodedBlockCache::DecodedBlockCache(CacheOptions options)
    : options_(options) {
  if (options_.shard_count == 0) options_.shard_count = 1;
  shard_budget_ = options_.capacity_bytes / options_.shard_count;
  shards_.reserve(options_.shard_count);
  for (std::size_t i = 0; i < options_.shard_count; ++i) {
    auto shard = std::make_unique<internal::CacheShard>();
    if constexpr (telemetry::kEnabled) {
      shard->metrics = internal::CacheShardMetrics::ForShard(i);
    }
    shards_.push_back(std::move(shard));
  }
}

DecodedBlockCache::~DecodedBlockCache() {
  // The registry gauge outlives this cache; give back this instance's
  // resident bytes so concurrent caches keep aggregating correctly.
  if constexpr (telemetry::kEnabled) {
    for (const auto& shard : shards_) {
      primacy::MutexLock lock(shard->mutex);
      shard->metrics->bytes.Add(-static_cast<std::int64_t>(shard->bytes));
    }
  }
}

internal::CacheShard& DecodedBlockCache::ShardFor(
    std::uint64_t stream_id, std::uint64_t chunk_index) const {
  // Upper bits: the table hash below uses the same mix, and unordered_map
  // implementations commonly reduce by modulus over the low bits.
  const std::uint64_t mixed = internal::MixKey(stream_id, chunk_index);
  return *shards_[static_cast<std::size_t>(mixed >> 32) % shards_.size()];
}

DecodedBlockCache::Handle DecodedBlockCache::Lookup(std::uint64_t stream_id,
                                                    std::uint64_t chunk_index) {
  internal::CacheShard& shard = ShardFor(stream_id, chunk_index);
  primacy::MutexLock lock(shard.mutex);
  const auto it = shard.index.find({stream_id, chunk_index});
  const bool hit = it != shard.index.end();
  if constexpr (telemetry::kEnabled) {
    (hit ? shard.metrics->hits : shard.metrics->misses).Increment();
    internal::CacheGlobalMetrics::Get().RecordLookup(hit);
  }
  if (!hit) {
    ++shard.stats.misses;
    return Handle();
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++it->second->pins;
  return Handle(&shard, &*it->second);
}

bool DecodedBlockCache::Insert(std::uint64_t stream_id,
                               std::uint64_t chunk_index, Bytes data) {
  internal::CacheShard& shard = ShardFor(stream_id, chunk_index);
  WallTimer fill_timer;
  primacy::MutexLock lock(shard.mutex);
  if (data.size() > shard_budget_ ||
      shard.index.count({stream_id, chunk_index}) != 0) {
    ++shard.stats.rejected;
    return false;
  }
  // Make room BEFORE linking the new entry so it can never be the eviction
  // victim. If every resident entry is pinned the shard overshoots its
  // budget instead of blocking (eviction defers until the pins drop).
  const std::size_t target = shard_budget_ - data.size();
  if (shard.bytes > target) {
    WallTimer evict_timer;
    auto it = shard.lru.end();
    while (shard.bytes > target && it != shard.lru.begin()) {
      --it;
      if (it->pins > 0) continue;
      shard.bytes -= it->data.size();
      if constexpr (telemetry::kEnabled) {
        shard.metrics->evictions.Increment();
        shard.metrics->bytes.Add(-static_cast<std::int64_t>(it->data.size()));
      }
      ++shard.stats.evictions;
      shard.index.erase({it->stream_id, it->chunk_index});
      it = shard.lru.erase(it);
    }
    if constexpr (telemetry::kEnabled) {
      internal::CacheGlobalMetrics::Get().evict_us.Observe(
          static_cast<double>(evict_timer.ElapsedNs()) / 1e3);
    }
  }
  const std::size_t size = data.size();
  shard.lru.push_front(internal::CacheEntry{stream_id, chunk_index,
                                            std::move(data), /*pins=*/0});
  shard.index.emplace(internal::CacheKey{stream_id, chunk_index},
                      shard.lru.begin());
  shard.bytes += size;
  ++shard.stats.insertions;
  if constexpr (telemetry::kEnabled) {
    shard.metrics->bytes.Add(static_cast<std::int64_t>(size));
    internal::CacheGlobalMetrics::Get().fill_us.Observe(
        static_cast<double>(fill_timer.ElapsedNs()) / 1e3);
  }
  return true;
}

bool DecodedBlockCache::Contains(std::uint64_t stream_id,
                                 std::uint64_t chunk_index) const {
  const internal::CacheShard& shard = ShardFor(stream_id, chunk_index);
  primacy::MutexLock lock(shard.mutex);
  return shard.index.count({stream_id, chunk_index}) != 0;
}

void DecodedBlockCache::Clear() {
  for (const auto& shard : shards_) {
    primacy::MutexLock lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->pins > 0) {
        ++it;
        continue;
      }
      shard->bytes -= it->data.size();
      if constexpr (telemetry::kEnabled) {
        shard->metrics->bytes.Add(-static_cast<std::int64_t>(it->data.size()));
      }
      shard->index.erase({it->stream_id, it->chunk_index});
      it = shard->lru.erase(it);
    }
  }
}

CacheStatsSnapshot DecodedBlockCache::Stats() const {
  CacheStatsSnapshot totals;
  for (const auto& shard : shards_) {
    primacy::MutexLock lock(shard->mutex);
    totals.hits += shard->stats.hits;
    totals.misses += shard->stats.misses;
    totals.insertions += shard->stats.insertions;
    totals.evictions += shard->stats.evictions;
    totals.rejected += shard->stats.rejected;
    totals.bytes += shard->bytes;
    totals.entries += shard->lru.size();
  }
  return totals;
}

std::shared_ptr<DecodedBlockCache> MakeBlockCache(const CacheOptions& options) {
  if (!options.enabled || options.capacity_bytes == 0) return nullptr;
  return std::make_shared<DecodedBlockCache>(options);
}

}  // namespace primacy
