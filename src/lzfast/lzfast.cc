#include "lzfast/lzfast.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "bitstream/byte_io.h"
#include "util/error.h"

namespace primacy {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxDistance = 65535;
constexpr std::uint32_t kNoPos = 0xffffffffu;
constexpr std::size_t kHashBits = 16;

constexpr std::uint8_t kModeStored = 0;
constexpr std::uint8_t kModeLz = 1;

std::uint32_t Read32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint32_t Hash4(std::uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// Emits a length value >= the nibble threshold as 255-run extension bytes.
void PutExtendedLength(Bytes& out, std::size_t value) {
  while (value >= 255) {
    out.push_back(std::byte{255});
    value -= 255;
  }
  out.push_back(static_cast<std::byte>(value));
}

std::size_t GetExtendedLength(ByteReader& reader) {
  std::size_t value = 0;
  for (;;) {
    const std::uint8_t b = reader.GetU8();
    value += b;
    if (b != 255) return value;
  }
}

void EmitSequence(Bytes& out, ByteSpan data, std::size_t literal_begin,
                  std::size_t literal_end, std::size_t match_length,
                  std::size_t distance) {
  const std::size_t lit_len = literal_end - literal_begin;
  const std::size_t match_code =
      match_length == 0 ? 0 : match_length - kMinMatch;
  const std::uint8_t lit_nibble =
      static_cast<std::uint8_t>(lit_len >= 15 ? 15 : lit_len);
  const std::uint8_t match_nibble =
      static_cast<std::uint8_t>(match_code >= 15 ? 15 : match_code);
  out.push_back(
      static_cast<std::byte>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutExtendedLength(out, lit_len - 15);
  AppendBytes(out, data.subspan(literal_begin, lit_len));
  if (match_length == 0) return;  // final literal-only sequence
  PutU16(out, static_cast<std::uint16_t>(distance));
  if (match_nibble == 15) PutExtendedLength(out, match_code - 15);
}

}  // namespace

Bytes LzFastCodec::Compress(ByteSpan data) const {
  Bytes out;
  PutVarint(out, data.size());
  out.push_back(static_cast<std::byte>(kModeLz));

  std::vector<std::uint32_t> table(1u << kHashBits, kNoPos);
  std::size_t pos = 0;
  std::size_t anchor = 0;
  while (pos + kMinMatch <= data.size()) {
    const std::uint32_t v = Read32(data.data() + pos);
    const std::uint32_t h = Hash4(v);
    const std::uint32_t candidate = table[h];
    table[h] = static_cast<std::uint32_t>(pos);
    if (candidate == kNoPos || pos - candidate > kMaxDistance ||
        Read32(data.data() + candidate) != v) {
      ++pos;
      continue;
    }
    // Extend the match forward.
    std::size_t length = kMinMatch;
    const std::size_t limit = data.size() - pos;
    while (length < limit &&
           data[candidate + length] == data[pos + length]) {
      ++length;
    }
    EmitSequence(out, data, anchor, pos, length, pos - candidate);
    pos += length;
    anchor = pos;
  }
  // Trailing literals (possibly the whole input).
  if (anchor < data.size() || data.empty()) {
    EmitSequence(out, data, anchor, data.size(), 0, 0);
  }

  if (out.size() > data.size() + 16) {
    Bytes stored;
    PutVarint(stored, data.size());
    stored.push_back(static_cast<std::byte>(kModeStored));
    AppendBytes(stored, data);
    return stored;
  }
  return out;
}

Bytes LzFastCodec::Decompress(ByteSpan data) const {
  ByteReader reader(data);
  const std::uint64_t original_size = reader.GetVarint();
  const std::uint8_t mode = reader.GetU8();
  if (mode == kModeStored) {
    const ByteSpan raw = reader.GetRaw(original_size);
    if (!reader.AtEnd()) {
      throw CorruptStreamError("lzfast: trailing bytes after stored payload");
    }
    return ToBytes(raw);
  }
  if (mode != kModeLz) throw CorruptStreamError("lzfast: unknown mode");

  Bytes out;
  out.reserve(std::min<std::uint64_t>(original_size, 1u << 26));
  while (out.size() < original_size || (original_size == 0 && out.empty())) {
    const std::uint8_t token = reader.GetU8();
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len += GetExtendedLength(reader);
    const ByteSpan literals = reader.GetRaw(lit_len);
    if (out.size() + lit_len > original_size) {
      throw CorruptStreamError("lzfast: literal overrun");
    }
    AppendBytes(out, literals);
    if (out.size() == original_size) break;  // final sequence

    std::size_t match_len = (token & 0x0f) + kMinMatch;
    const std::size_t distance = reader.GetU16();
    if ((token & 0x0f) == 15) match_len += GetExtendedLength(reader);
    if (distance == 0 || distance > out.size()) {
      throw CorruptStreamError("lzfast: bad distance");
    }
    if (out.size() + match_len > original_size) {
      throw CorruptStreamError("lzfast: match overrun");
    }
    std::size_t src = out.size() - distance;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[src + i]);
  }
  if (out.size() != original_size) {
    throw CorruptStreamError("lzfast: size mismatch");
  }
  if (!reader.AtEnd()) {
    throw CorruptStreamError("lzfast: trailing bytes after payload");
  }
  return out;
}

}  // namespace primacy
