// LzFast: the library's lzo-class codec — a byte-oriented greedy LZ with a
// single-probe hash table and token-packed sequences (the LZO/LZ4 family).
// No entropy coding stage, so compression is weak but throughput is an order
// of magnitude above the deflate-class codec; the paper uses this class as
// the "very fast but poor compression" end of the spectrum (Section IV-C).
//
// Container format:
//   varint original_size, u8 mode (0 = stored, 1 = lz)
//   stored: raw bytes
//   lz    : sequences of
//             token   (lit_len:4 | match_len_minus_4:4; 15 = extended)
//             [lit_len extension bytes]  (255-runs, LZ4 style)
//             literal bytes
//             -- stream may end here when the output is complete --
//             distance u16 little-endian (1..65535)
//             [match_len extension bytes]
#pragma once

#include "compress/codec.h"

namespace primacy {

class LzFastCodec final : public Codec {
 public:
  std::string_view name() const override { return "lzfast"; }
  Bytes Compress(ByteSpan data) const override;
  Bytes Decompress(ByteSpan data) const override;
};

}  // namespace primacy
