// The "solver" abstraction of the PRIMACY pipeline: a general-purpose
// lossless byte compressor. PRIMACY is a *preconditioner* — it rewrites data
// so that any Codec implementing this interface compresses it better
// (paper Section II-E).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace primacy {

/// A lossless byte-stream compressor. Implementations own their container
/// format; Decompress(Compress(x)) == x for every input x, and Decompress
/// throws CorruptStreamError on malformed input rather than returning
/// garbage.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Stable identifier used by the registry and in serialized frames.
  virtual std::string_view name() const = 0;

  /// Compresses `data`. The output embeds everything needed to decompress,
  /// including the original size.
  virtual Bytes Compress(ByteSpan data) const = 0;

  /// Exact inverse of Compress.
  virtual Bytes Decompress(ByteSpan data) const = 0;
};

/// Measured single-shot codec performance; feeds the Section III model
/// parameters (Tcomp, compression ratios) and the Table III columns.
struct CodecMeasurement {
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;

  /// Paper Eq. (1): original / compressed.
  double CompressionRatio() const;
  /// Paper Eq. (2): original bytes / runtime, in MB/s.
  double CompressMBps() const;
  double DecompressMBps() const;
};

/// Runs one compress+decompress cycle, validates the roundtrip, and returns
/// timings. Throws InternalError if the roundtrip mismatches.
CodecMeasurement MeasureCodec(const Codec& codec, ByteSpan data);

}  // namespace primacy
