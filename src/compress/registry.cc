#include "compress/registry.h"

#include <algorithm>

#include "util/error.h"

namespace primacy {

CodecRegistry& CodecRegistry::Global() {
  static auto* registry = new CodecRegistry();
  return *registry;
}

void CodecRegistry::Register(const std::string& name, Factory factory) {
  if (Contains(name)) {
    throw InvalidArgumentError("CodecRegistry: duplicate codec name " + name);
  }
  factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<Codec> CodecRegistry::Create(const std::string& name) const {
  for (const auto& [registered, factory] : factories_) {
    if (registered == name) return factory();
  }
  throw InvalidArgumentError("CodecRegistry: unknown codec " + name);
}

bool CodecRegistry::Contains(const std::string& name) const {
  return std::any_of(factories_.begin(), factories_.end(),
                     [&](const auto& entry) { return entry.first == name; });
}

std::vector<std::string> CodecRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<Codec> CreateCodec(const std::string& name) {
  return CodecRegistry::Global().Create(name);
}

CodecRegistrar::CodecRegistrar(const std::string& name,
                               CodecRegistry::Factory factory) {
  CodecRegistry::Global().Register(name, std::move(factory));
}

}  // namespace primacy
