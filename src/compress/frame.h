// Self-describing single-stream container: magic, codec name, sizes,
// payload. Used by the example CLI tools so a compressed file records which
// codec produced it.
#pragma once

#include <string>

#include "compress/codec.h"

namespace primacy {

struct FrameInfo {
  std::string codec_name;
  std::size_t original_bytes = 0;
  std::size_t payload_bytes = 0;
};

/// Wraps `payload` (already compressed by `codec_name`) into a frame.
Bytes WrapFrame(const std::string& codec_name, std::size_t original_bytes,
                ByteSpan payload);

/// Parses a frame header; returns the info and the payload view.
struct ParsedFrame {
  FrameInfo info;
  ByteSpan payload;
};
ParsedFrame ParseFrame(ByteSpan frame);

/// Compress `data` with `codec` and wrap the result.
Bytes CompressToFrame(const Codec& codec, ByteSpan data);

/// Parse a frame, instantiate its codec from the global registry, and
/// decompress. Throws CorruptStreamError if the decoded size disagrees with
/// the header.
Bytes DecompressFrame(ByteSpan frame);

}  // namespace primacy
