#include "compress/frame.h"

#include "bitstream/byte_io.h"
#include "compress/registry.h"
#include "util/error.h"

namespace primacy {
namespace {
constexpr std::uint32_t kFrameMagic = 0x434d5250;  // "PRMC" little-endian
constexpr std::uint8_t kFrameVersion = 1;
}  // namespace

Bytes WrapFrame(const std::string& codec_name, std::size_t original_bytes,
                ByteSpan payload) {
  Bytes out;
  PutU32(out, kFrameMagic);
  PutU8(out, kFrameVersion);
  PutVarint(out, codec_name.size());
  for (const char c : codec_name) out.push_back(static_cast<std::byte>(c));
  PutVarint(out, original_bytes);
  PutBlock(out, payload);
  return out;
}

ParsedFrame ParseFrame(ByteSpan frame) {
  ByteReader reader(frame);
  if (reader.GetU32() != kFrameMagic) {
    throw CorruptStreamError("ParseFrame: bad magic");
  }
  if (reader.GetU8() != kFrameVersion) {
    throw CorruptStreamError("ParseFrame: unsupported version");
  }
  ParsedFrame parsed;
  const std::uint64_t name_size = reader.GetVarint();
  const ByteSpan name = reader.GetRaw(name_size);
  parsed.info.codec_name = StringFromBytes(name);
  parsed.info.original_bytes = reader.GetVarint();
  parsed.payload = reader.GetBlock();
  parsed.info.payload_bytes = parsed.payload.size();
  return parsed;
}

Bytes CompressToFrame(const Codec& codec, ByteSpan data) {
  return WrapFrame(std::string(codec.name()), data.size(),
                   codec.Compress(data));
}

Bytes DecompressFrame(ByteSpan frame) {
  const ParsedFrame parsed = ParseFrame(frame);
  const auto codec = CreateCodec(parsed.info.codec_name);
  Bytes restored = codec->Decompress(parsed.payload);
  if (restored.size() != parsed.info.original_bytes) {
    throw CorruptStreamError("DecompressFrame: size mismatch");
  }
  return restored;
}

}  // namespace primacy
