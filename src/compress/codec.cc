#include "compress/codec.h"

#include "util/error.h"
#include "util/timer.h"

namespace primacy {

double CodecMeasurement::CompressionRatio() const {
  if (compressed_bytes == 0) return 0.0;
  return static_cast<double>(original_bytes) /
         static_cast<double>(compressed_bytes);
}

double CodecMeasurement::CompressMBps() const {
  return ThroughputMBps(original_bytes, compress_seconds);
}

double CodecMeasurement::DecompressMBps() const {
  return ThroughputMBps(original_bytes, decompress_seconds);
}

CodecMeasurement MeasureCodec(const Codec& codec, ByteSpan data) {
  CodecMeasurement m;
  m.original_bytes = data.size();

  WallTimer timer;
  const Bytes compressed = codec.Compress(data);
  m.compress_seconds = timer.Seconds();
  m.compressed_bytes = compressed.size();

  timer.Reset();
  const Bytes restored = codec.Decompress(compressed);
  m.decompress_seconds = timer.Seconds();

  if (restored.size() != data.size() ||
      !std::equal(restored.begin(), restored.end(), data.begin())) {
    throw InternalError(std::string("MeasureCodec: roundtrip mismatch for ") +
                        std::string(codec.name()));
  }
  return m;
}

}  // namespace primacy
