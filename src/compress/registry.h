// Name -> codec factory registry.
//
// Codecs register themselves at static-initialization time (each codec
// library provides a registration translation unit); user code looks them up
// by the names used throughout the paper's tables ("deflate", "lzfast",
// "bwt", "fpc", "fpz").
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace primacy {

class CodecRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Codec>()>;

  /// The process-wide registry.
  static CodecRegistry& Global();

  /// Registers `factory` under `name`; throws InvalidArgumentError on
  /// duplicates.
  void Register(const std::string& name, Factory factory);

  /// Instantiates the codec registered under `name`; throws
  /// InvalidArgumentError if unknown.
  std::unique_ptr<Codec> Create(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

/// Convenience: CodecRegistry::Global().Create(name).
std::unique_ptr<Codec> CreateCodec(const std::string& name);

/// Helper for static registration:
///   namespace { const CodecRegistrar r("deflate", [] { ... }); }
class CodecRegistrar {
 public:
  CodecRegistrar(const std::string& name, CodecRegistry::Factory factory);
};

}  // namespace primacy
