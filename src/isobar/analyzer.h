// ISOBAR analyzer (Schendel et al., ICDE 2012): decides, per byte-column of
// a fixed-width element stream, whether feeding that column to a byte-level
// entropy coder is worth the CPU. Columns whose sampled histogram shows
// exploitable skew are classified compressible; the rest are passed through
// raw so the compressor never burns time on noise (paper Section II-G).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace primacy {

struct IsobarOptions {
  /// Bytes sampled per column; sampling keeps analysis O(sample) per column.
  std::size_t sample_bytes = 4096;
  /// A column is compressible when its sampled byte entropy is below this
  /// many bits/byte...
  double entropy_threshold_bits = 7.8;
  /// ...or its most frequent byte exceeds this fraction (strong skew can
  /// coexist with moderately high entropy).
  double top_frequency_threshold = 0.02;
  /// Deterministic sampling stride start offset (tests fix this).
  std::size_t sample_offset = 0;
};

/// Per-column verdict plus the evidence it was based on.
struct ColumnAnalysis {
  std::size_t column = 0;
  double entropy_bits = 8.0;
  double top_frequency = 0.0;
  bool compressible = false;
};

/// Partition plan for an N x width byte matrix.
struct IsobarPlan {
  std::size_t width = 0;
  std::vector<ColumnAnalysis> columns;

  /// Convenience: indices of (in)compressible columns, ascending.
  std::vector<std::size_t> CompressibleColumns() const;
  std::vector<std::size_t> IncompressibleColumns() const;
  /// Fraction of the matrix classified compressible (the model's alpha).
  double CompressibleFraction() const;
};

/// Analyzes a row-linearized `width`-byte element matrix column by column.
IsobarPlan AnalyzeColumns(ByteSpan rows, std::size_t width,
                          const IsobarOptions& options = {});

/// Serialization of the plan's verdict bitmap for embedding in containers.
Bytes SerializePlan(const IsobarPlan& plan);
IsobarPlan DeserializePlan(ByteSpan data);

}  // namespace primacy
