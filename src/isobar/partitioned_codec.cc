#include "isobar/partitioned_codec.h"

#include "bitstream/byte_io.h"
#include "util/byte_matrix.h"
#include "util/error.h"

namespace primacy {

IsobarCompressed IsobarCompress(ByteSpan rows, std::size_t width,
                                const IsobarPlan& plan, const Codec& solver) {
  if (plan.width != width || plan.columns.size() != width) {
    throw InvalidArgumentError("IsobarCompress: plan does not match width");
  }
  const std::size_t n = width == 0 ? 0 : rows.size() / width;
  if (width == 0 || rows.size() % width != 0) {
    throw InvalidArgumentError("IsobarCompress: bad matrix shape");
  }

  // Gather compressible columns (column-linearized) and raw columns.
  Bytes compressible;
  Bytes raw;
  for (const ColumnAnalysis& col : plan.columns) {
    Bytes column(n);
    for (std::size_t i = 0; i < n; ++i) {
      column[i] = rows[i * width + col.column];
    }
    AppendBytes(col.compressible ? compressible : raw, column);
  }

  IsobarCompressed result;
  result.plan = plan;
  const Bytes solved = solver.Compress(compressible);
  result.compressed_bytes = solved.size();
  result.raw_bytes = raw.size();

  Bytes& out = result.stream;
  PutVarint(out, n);
  PutBlock(out, SerializePlan(plan));
  PutBlock(out, solved);
  PutBlock(out, raw);
  return result;
}

IsobarCompressed IsobarCompress(ByteSpan rows, std::size_t width,
                                const Codec& solver,
                                const IsobarOptions& options) {
  return IsobarCompress(rows, width, AnalyzeColumns(rows, width, options),
                        solver);
}

Bytes IsobarDecompress(ByteSpan stream, const Codec& solver) {
  ByteReader reader(stream);
  const std::uint64_t n = reader.GetVarint();
  const IsobarPlan plan = DeserializePlan(reader.GetBlock());
  const Bytes compressible = solver.Decompress(reader.GetBlock());
  const ByteSpan raw = reader.GetBlock();

  const auto comp_cols = plan.CompressibleColumns();
  const auto raw_cols = plan.IncompressibleColumns();
  // Overflow-safe consistency checks: division instead of multiplication,
  // since n comes from an untrusted varint.
  const auto column_count_matches = [n](std::size_t bytes,
                                        std::size_t columns) {
    if (columns == 0) return bytes == 0;
    return bytes % columns == 0 && bytes / columns == n;
  };
  if (!column_count_matches(compressible.size(), comp_cols.size()) ||
      !column_count_matches(raw.size(), raw_cols.size())) {
    throw CorruptStreamError("IsobarDecompress: column sizes inconsistent");
  }
  if (plan.width != 0 && n > (compressible.size() + raw.size())) {
    throw CorruptStreamError("IsobarDecompress: element count inconsistent");
  }

  Bytes rows(n * plan.width);
  for (std::size_t c = 0; c < comp_cols.size(); ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      rows[i * plan.width + comp_cols[c]] = compressible[c * n + i];
    }
  }
  for (std::size_t c = 0; c < raw_cols.size(); ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      rows[i * plan.width + raw_cols[c]] = raw[c * n + i];
    }
  }
  return rows;
}

}  // namespace primacy
