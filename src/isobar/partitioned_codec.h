// ISOBAR partitioned compression: applies the analyzer's plan to an element
// stream — compressible byte-columns are column-linearized and fed to the
// solver codec, incompressible columns are stored verbatim. This is the
// "ISOBAR-COMPRESS" step of the paper's Algorithm 1, applied in PRIMACY to
// the six low-order mantissa bytes of each double.
#pragma once

#include <memory>

#include "compress/codec.h"
#include "isobar/analyzer.h"

namespace primacy {

struct IsobarCompressed {
  Bytes stream;
  IsobarPlan plan;                 // the plan that was applied
  std::size_t compressed_bytes = 0;   // solver output size
  std::size_t raw_bytes = 0;           // bytes stored verbatim
};

/// Compresses a row-linearized `width`-byte element matrix under `plan`
/// using `solver`. The returned stream is self-describing.
IsobarCompressed IsobarCompress(ByteSpan rows, std::size_t width,
                                const IsobarPlan& plan, const Codec& solver);

/// Analyze-then-compress convenience.
IsobarCompressed IsobarCompress(ByteSpan rows, std::size_t width,
                                const Codec& solver,
                                const IsobarOptions& options = {});

/// Inverse of IsobarCompress.
Bytes IsobarDecompress(ByteSpan stream, const Codec& solver);

}  // namespace primacy
