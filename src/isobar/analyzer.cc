#include "isobar/analyzer.h"

#include <algorithm>
#include <array>

#include "bitstream/byte_io.h"
#include "kernels/kernels.h"
#include "util/error.h"
#include "util/stats.h"

namespace primacy {

std::vector<std::size_t> IsobarPlan::CompressibleColumns() const {
  std::vector<std::size_t> out;
  for (const ColumnAnalysis& col : columns) {
    if (col.compressible) out.push_back(col.column);
  }
  return out;
}

std::vector<std::size_t> IsobarPlan::IncompressibleColumns() const {
  std::vector<std::size_t> out;
  for (const ColumnAnalysis& col : columns) {
    if (!col.compressible) out.push_back(col.column);
  }
  return out;
}

double IsobarPlan::CompressibleFraction() const {
  if (columns.empty()) return 0.0;
  return static_cast<double>(CompressibleColumns().size()) /
         static_cast<double>(columns.size());
}

IsobarPlan AnalyzeColumns(ByteSpan rows, std::size_t width,
                          const IsobarOptions& options) {
  if (width == 0) throw InvalidArgumentError("AnalyzeColumns: width 0");
  if (rows.size() % width != 0) {
    throw InvalidArgumentError(
        "AnalyzeColumns: size not a multiple of width");
  }
  if (options.sample_bytes == 0) {
    throw InvalidArgumentError("AnalyzeColumns: sample_bytes must be > 0");
  }
  const std::size_t n = rows.size() / width;

  IsobarPlan plan;
  plan.width = width;
  plan.columns.reserve(width);
  for (std::size_t col = 0; col < width; ++col) {
    ColumnAnalysis analysis;
    analysis.column = col;
    if (n > 0) {
      // Strided deterministic sample of the column, accumulated by the
      // dispatched histogram kernel. `taken` is the trip count of the
      // historical loop: i = start, start+stride, ... while i < n, capped
      // at `samples`.
      const std::size_t samples = std::min(options.sample_bytes, n);
      const std::size_t stride = std::max<std::size_t>(1, n / samples);
      const std::size_t start = options.sample_offset % stride;
      const std::size_t taken =
          start < n ? std::min(samples, (n - 1 - start) / stride + 1) : 0;
      std::array<std::uint64_t, 256> histogram{};
      kernels::Active().histogram_stride(rows.data() + start * width + col,
                                         taken, stride * width,
                                         histogram.data());
      analysis.entropy_bits = HistogramEntropyBits(histogram);
      const std::uint64_t top =
          *std::max_element(histogram.begin(), histogram.end());
      analysis.top_frequency =
          taken == 0 ? 0.0
                     : static_cast<double>(top) / static_cast<double>(taken);
    }
    analysis.compressible =
        n > 0 && (analysis.entropy_bits < options.entropy_threshold_bits ||
                  analysis.top_frequency > options.top_frequency_threshold);
    plan.columns.push_back(analysis);
  }
  return plan;
}

Bytes SerializePlan(const IsobarPlan& plan) {
  Bytes out;
  PutVarint(out, plan.width);
  PutVarint(out, plan.columns.size());
  std::uint8_t bits = 0;
  std::size_t filled = 0;
  for (const ColumnAnalysis& col : plan.columns) {
    bits = static_cast<std::uint8_t>(bits |
                                     ((col.compressible ? 1u : 0u) << filled));
    if (++filled == 8) {
      PutU8(out, bits);
      bits = 0;
      filled = 0;
    }
  }
  if (filled != 0) PutU8(out, bits);
  return out;
}

IsobarPlan DeserializePlan(ByteSpan data) {
  ByteReader reader(data);
  IsobarPlan plan;
  plan.width = reader.GetVarint();
  if (plan.width > 64) {
    throw CorruptStreamError("DeserializePlan: implausible element width");
  }
  const std::uint64_t count = reader.GetVarint();
  if (count > plan.width) {
    throw CorruptStreamError("DeserializePlan: more columns than width");
  }
  std::uint8_t bits = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (i % 8 == 0) bits = reader.GetU8();
    ColumnAnalysis analysis;
    analysis.column = i;
    analysis.compressible = ((bits >> (i % 8)) & 1u) != 0;
    plan.columns.push_back(analysis);
  }
  return plan;
}

}  // namespace primacy
