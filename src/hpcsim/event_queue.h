// Minimal discrete-event simulation kernel: a virtual clock and a stable
// priority queue of timestamped callbacks. The staging scenarios (staging.h)
// are built on top of it; the kernel itself is scenario-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace primacy::hpcsim {

using SimTime = double;  // seconds of virtual time

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute virtual time `when` (must not be in the
  /// past once Run() has started draining). Events with equal timestamps
  /// fire in scheduling order.
  void Schedule(SimTime when, Callback fn);

  /// Drains the queue; returns the timestamp of the last event (0 when the
  /// queue was empty).
  SimTime Run();

  /// Current virtual time (valid inside callbacks).
  SimTime Now() const { return now_; }

  bool Empty() const { return events_.empty(); }
  std::size_t ProcessedEvents() const { return processed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace primacy::hpcsim
