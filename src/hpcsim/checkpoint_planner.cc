#include "hpcsim/checkpoint_planner.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

#include "util/error.h"

namespace primacy::hpcsim {
namespace {

void ValidateTimes(double checkpoint_seconds, double mtbf_seconds) {
  if (checkpoint_seconds <= 0.0 || mtbf_seconds <= 0.0) {
    throw InvalidArgumentError(
        "checkpoint_planner: times must be positive");
  }
}

}  // namespace

double YoungInterval(double checkpoint_seconds, double mtbf_seconds) {
  ValidateTimes(checkpoint_seconds, mtbf_seconds);
  return std::sqrt(2.0 * checkpoint_seconds * mtbf_seconds);
}

double DalyInterval(double checkpoint_seconds, double mtbf_seconds) {
  ValidateTimes(checkpoint_seconds, mtbf_seconds);
  const double delta = checkpoint_seconds;
  const double m = mtbf_seconds;
  if (delta >= 2.0 * m) return m;  // Daly's boundary case
  // Daly (2006): t_opt = sqrt(2 delta M) * [1 + sqrt(delta/(2M))/3 +
  //                                          (delta/(2M))/9] - delta
  const double ratio = std::sqrt(delta / (2.0 * m));
  const double interval =
      std::sqrt(2.0 * delta * m) *
          (1.0 + ratio / 3.0 + ratio * ratio / 9.0) -
      delta;
  return std::max(interval, delta);
}

double MachineEfficiency(double interval_seconds, double checkpoint_seconds,
                         double mtbf_seconds, double restart_seconds) {
  ValidateTimes(checkpoint_seconds, mtbf_seconds);
  if (interval_seconds <= 0.0 || restart_seconds < 0.0) {
    throw InvalidArgumentError("checkpoint_planner: bad interval or restart");
  }
  const double useful_share =
      interval_seconds / (interval_seconds + checkpoint_seconds);
  const double failure_loss =
      (interval_seconds / 2.0 + restart_seconds) / mtbf_seconds;
  return std::max(0.0, useful_share * (1.0 - failure_loss));
}

CheckpointPlan PlanCheckpoints(const ClusterConfig& config,
                               const CompressionProfile& profile,
                               double mtbf_seconds) {
  CheckpointPlan plan;
  plan.checkpoint_seconds = SimulateWrite(config, profile).total_seconds;
  plan.restart_seconds = SimulateRead(config, profile).total_seconds;
  plan.young_interval = YoungInterval(plan.checkpoint_seconds, mtbf_seconds);
  plan.daly_interval = DalyInterval(plan.checkpoint_seconds, mtbf_seconds);
  plan.efficiency_at_daly =
      MachineEfficiency(plan.daly_interval, plan.checkpoint_seconds,
                        mtbf_seconds, plan.restart_seconds);
  return plan;
}

WorkloadResult SimulateFailingWorkload(double work_seconds,
                                       double interval_seconds,
                                       double checkpoint_seconds,
                                       double restart_seconds,
                                       double mtbf_seconds,
                                       std::uint64_t seed) {
  ValidateTimes(checkpoint_seconds, mtbf_seconds);
  if (work_seconds <= 0.0 || interval_seconds <= 0.0 || restart_seconds < 0.0) {
    throw InvalidArgumentError("SimulateFailingWorkload: bad arguments");
  }
  Rng rng(seed);
  const auto next_failure_gap = [&rng, mtbf_seconds] {
    // Exponential inter-failure times (Poisson process).
    return -mtbf_seconds * std::log(1.0 - rng.NextDouble());
  };

  WorkloadResult result;
  double clock = 0.0;
  double committed_work = 0.0;   // work saved by the last checkpoint
  double failure_at = next_failure_gap();

  while (committed_work < work_seconds) {
    const double segment =
        std::min(interval_seconds, work_seconds - committed_work);
    const double segment_end = clock + segment + checkpoint_seconds;
    if (failure_at < segment_end) {
      // Lost the in-flight segment: roll back, pay the restart.
      ++result.failures;
      clock = failure_at + restart_seconds;
      failure_at = clock + next_failure_gap();
      continue;
    }
    clock = segment_end;
    committed_work += segment;
    ++result.checkpoints_written;
  }
  result.wall_seconds = clock;
  result.efficiency = work_seconds / clock;
  return result;
}

}  // namespace primacy::hpcsim
