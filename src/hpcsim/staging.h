// Bulk-synchronous staging-environment scenarios (the Jaguar XK6 stand-in):
// rho compute nodes per I/O node, a shared collective network link into each
// I/O node (throughput theta measured at the I/O node), and a disk behind
// each I/O node (mu_w / mu_r). Compute-side compression cost is injected via
// a CompressionProfile whose throughputs the benches calibrate from *real*
// measured codec runs — virtual time for the cluster, real measurements for
// the CPU work, exactly the split the paper's model parameterizes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hpcsim/event_queue.h"
#include "hpcsim/resources.h"

namespace primacy::hpcsim {

struct ClusterConfig {
  std::size_t compute_nodes = 64;
  std::size_t compute_per_io = 8;      // rho
  double network_bps = 500e6;          // theta, per I/O node
  double disk_write_bps = 180e6;       // mu_w, per I/O node
  double disk_read_bps = 220e6;        // mu_r, per I/O node
};

/// Per-compute-node data movement profile for one checkpoint step.
///
/// With `chunks_per_node` > 1 the node emits that many chunks and the
/// simulator pipelines them: compression of chunk k+1 overlaps the transfer
/// and disk I/O of chunk k (each node's CPU is serial; the shared link and
/// disk are FIFO). This is how in-situ compression "hides its cost in the
/// I/O pipeline" — on an I/O-bound cluster only the first chunk's
/// compression latency is exposed.
struct CompressionProfile {
  double input_bytes = 3.0 * 1024 * 1024;   // raw bytes per chunk (C)
  double output_bytes = 3.0 * 1024 * 1024;  // moved bytes per chunk (payload+meta)
  std::size_t chunks_per_node = 1;
  // Compute-side costs, seconds per chunk (0 for the null/no-compression case).
  double precondition_seconds = 0.0;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  double postcondition_seconds = 0.0;

  static CompressionProfile Null(double chunk_bytes);
};

/// Per-node stage completion times, for tests and traces.
struct NodeTrace {
  SimTime local_done = 0.0;     // compression finished (write) / started (read)
  SimTime transfer_done = 0.0;
  SimTime io_done = 0.0;        // disk write (write path) or disk read (read)
  SimTime finished = 0.0;       // node fully done with the step
};

struct StagingResult {
  SimTime total_seconds = 0.0;
  double aggregate_throughput_bps = 0.0;  // raw bytes moved / total time
  std::vector<NodeTrace> nodes;
  double network_utilization = 0.0;  // mean across I/O groups
  double disk_utilization = 0.0;
  std::size_t events_processed = 0;

  double ThroughputMBps() const { return aggregate_throughput_bps / 1e6; }
};

/// Simulates one bulk-synchronous checkpoint write: every compute node
/// preconditions+compresses its chunk, ships it through its I/O node's
/// network link, and the I/O node writes it to disk.
StagingResult SimulateWrite(const ClusterConfig& config,
                            const CompressionProfile& profile);

/// Heterogeneous variant: one profile per compute node. This models the
/// paper's "transmission of variable length segments from compute nodes"
/// (Section I) — compressed payload sizes differ across nodes, so the
/// slowest node/straggler sets the bulk-synchronous step time.
StagingResult SimulateWrite(const ClusterConfig& config,
                            std::span<const CompressionProfile> profiles);

/// Simulates the inverse restart read: disk read, network transfer to the
/// compute node, decompression + inverse preconditioning.
StagingResult SimulateRead(const ClusterConfig& config,
                           const CompressionProfile& profile);
StagingResult SimulateRead(const ClusterConfig& config,
                           std::span<const CompressionProfile> profiles);

/// Write with compression at the *I/O nodes* instead of the compute nodes:
/// raw chunks cross the network, then each I/O node compresses its group's
/// chunks serially before writing. The paper argues (Section III-A) that
/// compute-node placement wins because compression parallelizes over rho
/// nodes and the network carries the reduced payload; this scenario is the
/// other arm of that comparison.
StagingResult SimulateWriteAtIoNode(const ClusterConfig& config,
                                    const CompressionProfile& profile);

}  // namespace primacy::hpcsim
