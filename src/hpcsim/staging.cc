#include "hpcsim/staging.h"

#include <algorithm>
#include <memory>

#include "util/error.h"
#include "util/stats.h"

namespace primacy::hpcsim {
namespace {

struct IoGroup {
  FifoServer network;
  FifoServer disk_write;
  FifoServer disk_read;
};

std::vector<std::unique_ptr<IoGroup>> BuildGroups(const ClusterConfig& cfg) {
  if (cfg.compute_nodes == 0 || cfg.compute_per_io == 0) {
    throw InvalidArgumentError("staging: node counts must be positive");
  }
  const std::size_t groups =
      (cfg.compute_nodes + cfg.compute_per_io - 1) / cfg.compute_per_io;
  std::vector<std::unique_ptr<IoGroup>> out;
  out.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    out.push_back(std::make_unique<IoGroup>(IoGroup{
        FifoServer("network/" + std::to_string(g), cfg.network_bps),
        FifoServer("disk-w/" + std::to_string(g), cfg.disk_write_bps),
        FifoServer("disk-r/" + std::to_string(g), cfg.disk_read_bps)}));
  }
  return out;
}

StagingResult Finalize(const ClusterConfig& cfg,
                       std::span<const CompressionProfile> profiles,
                       std::vector<std::unique_ptr<IoGroup>>& groups,
                       std::vector<NodeTrace> nodes, SimTime total,
                       std::size_t events, bool write_path) {
  StagingResult result;
  result.total_seconds = total;
  result.nodes = std::move(nodes);
  result.events_processed = events;
  double raw_bytes = 0.0;
  for (const CompressionProfile& profile : profiles) {
    raw_bytes +=
        profile.input_bytes * static_cast<double>(profile.chunks_per_node);
  }
  result.aggregate_throughput_bps = total > 0.0 ? raw_bytes / total : 0.0;
  std::vector<double> net_util, disk_util;
  net_util.reserve(groups.size());
  disk_util.reserve(groups.size());
  for (const auto& group : groups) {
    net_util.push_back(group->network.Utilization(total));
    disk_util.push_back(write_path ? group->disk_write.Utilization(total)
                                   : group->disk_read.Utilization(total));
  }
  result.network_utilization = Mean(net_util);
  result.disk_utilization = Mean(disk_util);
  return result;
}

}  // namespace

CompressionProfile CompressionProfile::Null(double chunk_bytes) {
  CompressionProfile profile;
  profile.input_bytes = chunk_bytes;
  profile.output_bytes = chunk_bytes;
  return profile;
}

StagingResult SimulateWrite(const ClusterConfig& config,
                            const CompressionProfile& profile) {
  const std::vector<CompressionProfile> profiles(config.compute_nodes,
                                                 profile);
  return SimulateWrite(config, profiles);
}

StagingResult SimulateWrite(const ClusterConfig& config,
                            std::span<const CompressionProfile> profiles) {
  auto groups = BuildGroups(config);
  EventQueue queue;
  std::vector<NodeTrace> nodes(config.compute_nodes);

  if (profiles.size() != config.compute_nodes) {
    throw InvalidArgumentError("staging: one profile per compute node");
  }
  for (std::size_t node = 0; node < config.compute_nodes; ++node) {
    const CompressionProfile& profile = profiles[node];
    if (profile.chunks_per_node == 0) {
      throw InvalidArgumentError("staging: chunks_per_node must be positive");
    }
    IoGroup& group = *groups[node / config.compute_per_io];
    NodeTrace& trace = nodes[node];
    const double cpu_per_chunk =
        profile.precondition_seconds + profile.compress_seconds;
    for (std::size_t chunk = 0; chunk < profile.chunks_per_node; ++chunk) {
      // Stage 1: the node's CPU compresses its chunks back to back, so chunk
      // k's compression overlaps chunk k-1's transfer and disk write.
      const SimTime local_done =
          cpu_per_chunk * static_cast<double>(chunk + 1);
      queue.Schedule(local_done, [&queue, &group, &trace, &profile] {
        trace.local_done = std::max(trace.local_done, queue.Now());
        // Stage 2: ship the (possibly reduced) payload over the shared link.
        const SimTime transfer_done =
            group.network.Submit(queue.Now(), profile.output_bytes);
        queue.Schedule(transfer_done, [&queue, &group, &trace, &profile] {
          trace.transfer_done = std::max(trace.transfer_done, queue.Now());
          // Stage 3: the I/O node drains it to disk.
          const SimTime write_done =
              group.disk_write.Submit(queue.Now(), profile.output_bytes);
          queue.Schedule(write_done, [&queue, &trace] {
            trace.io_done = std::max(trace.io_done, queue.Now());
            trace.finished = trace.io_done;
          });
        });
      });
    }
  }
  const SimTime total = queue.Run();
  return Finalize(config, profiles, groups, std::move(nodes), total,
                  queue.ProcessedEvents(), /*write_path=*/true);
}

StagingResult SimulateRead(const ClusterConfig& config,
                           const CompressionProfile& profile) {
  const std::vector<CompressionProfile> profiles(config.compute_nodes,
                                                 profile);
  return SimulateRead(config, profiles);
}

StagingResult SimulateRead(const ClusterConfig& config,
                           std::span<const CompressionProfile> profiles) {
  auto groups = BuildGroups(config);
  EventQueue queue;
  std::vector<NodeTrace> nodes(config.compute_nodes);

  if (profiles.size() != config.compute_nodes) {
    throw InvalidArgumentError("staging: one profile per compute node");
  }
  // Per-node CPU availability for the serialized decompression stage; chunk
  // k+1's disk read and transfer overlap chunk k's decompression.
  std::vector<SimTime> cpu_free(config.compute_nodes, 0.0);
  for (std::size_t node = 0; node < config.compute_nodes; ++node) {
    const CompressionProfile& profile = profiles[node];
    if (profile.chunks_per_node == 0) {
      throw InvalidArgumentError("staging: chunks_per_node must be positive");
    }
    IoGroup& group = *groups[node / config.compute_per_io];
    NodeTrace& trace = nodes[node];
    for (std::size_t chunk = 0; chunk < profile.chunks_per_node; ++chunk) {
      // Stage 1: the I/O node reads this node's payload from disk.
      const SimTime read_done =
          group.disk_read.Submit(0.0, profile.output_bytes);
      queue.Schedule(read_done, [&queue, &group, &trace, &profile, &cpu_free,
                                 node] {
        trace.io_done = std::max(trace.io_done, queue.Now());
        // Stage 2: payload crosses the shared link to the compute node.
        const SimTime transfer_done =
            group.network.Submit(queue.Now(), profile.output_bytes);
        queue.Schedule(transfer_done, [&queue, &trace, &profile, &cpu_free,
                                       node] {
          trace.transfer_done = std::max(trace.transfer_done, queue.Now());
          // Stage 3: decompress + inverse precondition on the node's CPU.
          const SimTime start = std::max(cpu_free[node], queue.Now());
          const SimTime finished = start + profile.decompress_seconds +
                                   profile.postcondition_seconds;
          cpu_free[node] = finished;
          queue.Schedule(finished, [&queue, &trace] {
            trace.local_done = std::max(trace.local_done, queue.Now());
            trace.finished = trace.local_done;
          });
        });
      });
    }
  }
  const SimTime total = queue.Run();
  return Finalize(config, profiles, groups, std::move(nodes), total,
                  queue.ProcessedEvents(), /*write_path=*/false);
}

StagingResult SimulateWriteAtIoNode(const ClusterConfig& config,
                                    const CompressionProfile& profile) {
  auto groups = BuildGroups(config);
  EventQueue queue;
  std::vector<NodeTrace> nodes(config.compute_nodes);
  if (profile.chunks_per_node == 0) {
    throw InvalidArgumentError("staging: chunks_per_node must be positive");
  }
  // One CPU timeline per I/O node: compression of all rho * chunks_per_node
  // chunks of its group is serialized there.
  std::vector<SimTime> io_cpu_free(groups.size(), 0.0);

  for (std::size_t node = 0; node < config.compute_nodes; ++node) {
    const std::size_t group_index = node / config.compute_per_io;
    IoGroup& group = *groups[group_index];
    NodeTrace& trace = nodes[node];
    for (std::size_t chunk = 0; chunk < profile.chunks_per_node; ++chunk) {
      // Stage 1: the RAW chunk crosses the shared link (no reduction yet).
      const SimTime transfer_done =
          group.network.Submit(0.0, profile.input_bytes);
      queue.Schedule(transfer_done, [&queue, &group, &trace, &profile,
                                     &io_cpu_free, group_index] {
        trace.transfer_done = std::max(trace.transfer_done, queue.Now());
        // Stage 2: the I/O node's CPU compresses group chunks one by one.
        const SimTime start = std::max(io_cpu_free[group_index], queue.Now());
        const SimTime compressed = start + profile.precondition_seconds +
                                   profile.compress_seconds;
        io_cpu_free[group_index] = compressed;
        queue.Schedule(compressed, [&queue, &group, &trace, &profile] {
          trace.local_done = std::max(trace.local_done, queue.Now());
          // Stage 3: the reduced payload goes to disk.
          const SimTime write_done =
              group.disk_write.Submit(queue.Now(), profile.output_bytes);
          queue.Schedule(write_done, [&queue, &trace] {
            trace.io_done = std::max(trace.io_done, queue.Now());
            trace.finished = trace.io_done;
          });
        });
      });
    }
  }
  const SimTime total = queue.Run();
  const std::vector<CompressionProfile> profiles(config.compute_nodes,
                                                 profile);
  return Finalize(config, profiles, groups, std::move(nodes), total,
                  queue.ProcessedEvents(), /*write_path=*/true);
}

}  // namespace primacy::hpcsim
