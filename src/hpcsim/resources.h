// Shared-resource models for the staging simulator: a FIFO byte server
// (network link, disk) with a fixed service rate, plus utilization
// accounting. Service is deterministic — bytes / rate — which matches the
// paper's model assumptions (consistent staging throughputs, Section III-A).
#pragma once

#include <cstdint>
#include <string>

#include "hpcsim/event_queue.h"

namespace primacy::hpcsim {

/// A single-channel resource serving byte-sized jobs in arrival order.
class FifoServer {
 public:
  FifoServer(std::string label, double bytes_per_second);

  /// Enqueues a job arriving at `arrival`; returns its completion time.
  /// Jobs submitted in nondecreasing arrival order are served FIFO; an
  /// earlier arrival submitted late still queues behind already-accepted
  /// work (single-channel semantics).
  SimTime Submit(SimTime arrival, double bytes);

  double rate() const { return rate_; }
  const std::string& label() const { return label_; }
  double busy_seconds() const { return busy_seconds_; }
  double bytes_served() const { return bytes_served_; }
  SimTime busy_until() const { return busy_until_; }

  /// Fraction of [0, horizon] this server spent serving.
  double Utilization(SimTime horizon) const;

 private:
  std::string label_;
  double rate_;
  SimTime busy_until_ = 0.0;
  double busy_seconds_ = 0.0;
  double bytes_served_ = 0.0;
};

}  // namespace primacy::hpcsim
