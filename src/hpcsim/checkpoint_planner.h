// Checkpoint-interval planning on top of the staging simulator.
//
// The paper motivates in-situ compression with "the increase in frequency of
// checkpoint writes due to higher potential of node failure at scale"
// (Section I). This extension quantifies that: given a cluster, a failure
// rate, and a compression profile, it computes the checkpoint cost from the
// staging simulator, the optimal checkpoint interval (Young's first-order
// rule and Daly's higher-order refinement), and the resulting machine
// efficiency — so the benefit of faster checkpoints shows up in the metric
// operators actually care about.
#pragma once

#include <cstdint>

#include "hpcsim/staging.h"

namespace primacy::hpcsim {

/// Young's 1974 first-order optimum: interval = sqrt(2 * delta * mtbf),
/// where delta is the checkpoint write time.
double YoungInterval(double checkpoint_seconds, double mtbf_seconds);

/// Daly's 2006 higher-order optimum; falls back to mtbf when the checkpoint
/// cost exceeds half the MTBF (Daly's own boundary case).
double DalyInterval(double checkpoint_seconds, double mtbf_seconds);

/// Expected fraction of wall-clock time spent on useful computation when
/// checkpointing every `interval_seconds`:
///   lost = checkpoint time + expected rework + restart on failure.
/// First-order model (failures Poisson with the given MTBF):
///   efficiency = (interval / (interval + delta)) *
///                (1 - (interval/2 + restart) / mtbf)
double MachineEfficiency(double interval_seconds, double checkpoint_seconds,
                         double mtbf_seconds, double restart_seconds);

struct CheckpointPlan {
  double checkpoint_seconds = 0.0;  // one checkpoint write (from simulator)
  double restart_seconds = 0.0;     // one restart read (from simulator)
  double young_interval = 0.0;
  double daly_interval = 0.0;
  double efficiency_at_daly = 0.0;
};

/// Runs one simulated checkpoint write and restart read under `profile` and
/// derives the plan. `mtbf_seconds` is the whole-system mean time between
/// failures.
CheckpointPlan PlanCheckpoints(const ClusterConfig& config,
                               const CompressionProfile& profile,
                               double mtbf_seconds);

/// Failure-injected workload simulation: runs a job of `work_seconds` useful
/// compute, checkpointing every `interval_seconds` (each checkpoint costs
/// `checkpoint_seconds`), under exponentially distributed failures with the
/// given MTBF (deterministic via `seed`). A failure rolls the job back to
/// the last completed checkpoint and charges `restart_seconds`. Returns the
/// achieved efficiency = work_seconds / total wall-clock — the Monte-Carlo
/// ground truth the analytic MachineEfficiency approximates.
struct WorkloadResult {
  double wall_seconds = 0.0;
  double efficiency = 0.0;
  std::size_t checkpoints_written = 0;
  std::size_t failures = 0;
};
WorkloadResult SimulateFailingWorkload(double work_seconds,
                                       double interval_seconds,
                                       double checkpoint_seconds,
                                       double restart_seconds,
                                       double mtbf_seconds,
                                       std::uint64_t seed);

}  // namespace primacy::hpcsim
