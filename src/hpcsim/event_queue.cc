#include "hpcsim/event_queue.h"

#include "util/error.h"

namespace primacy::hpcsim {

void EventQueue::Schedule(SimTime when, Callback fn) {
  if (when < now_) {
    throw InvalidArgumentError("EventQueue: scheduling into the past");
  }
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

SimTime EventQueue::Run() {
  SimTime last = 0.0;
  while (!events_.empty()) {
    // priority_queue::top returns const&; move the callback out via const
    // cast is UB — copy instead (callbacks are small).
    Event event = events_.top();
    events_.pop();
    now_ = event.when;
    last = event.when;
    ++processed_;
    event.fn();
  }
  return last;
}

}  // namespace primacy::hpcsim
