#include "hpcsim/resources.h"

#include <algorithm>

#include "util/error.h"

namespace primacy::hpcsim {

FifoServer::FifoServer(std::string label, double bytes_per_second)
    : label_(std::move(label)), rate_(bytes_per_second) {
  if (rate_ <= 0.0) {
    throw InvalidArgumentError("FifoServer: rate must be positive");
  }
}

SimTime FifoServer::Submit(SimTime arrival, double bytes) {
  if (arrival < 0.0 || bytes < 0.0) {
    throw InvalidArgumentError("FifoServer: negative arrival or size");
  }
  const SimTime start = std::max(arrival, busy_until_);
  const double service = bytes / rate_;
  busy_until_ = start + service;
  busy_seconds_ += service;
  bytes_served_ += bytes;
  return busy_until_;
}

double FifoServer::Utilization(SimTime horizon) const {
  if (horizon <= 0.0) return 0.0;
  return std::min(1.0, busy_seconds_ / horizon);
}

}  // namespace primacy::hpcsim
