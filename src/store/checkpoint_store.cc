#include "store/checkpoint_store.h"

#include <algorithm>

#include "bitstream/byte_io.h"
#include "telemetry/trace.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace primacy {
namespace {
constexpr std::uint32_t kMagic = 0x314b4350;  // "PCK1"
constexpr std::uint8_t kVersion = 1;

/// Materializes the reader's shared decoded-block cache: an explicit
/// block_cache instance passes through untouched, otherwise one is built
/// from the cache knobs (null when disabled). Every decompressor the
/// reader constructs from these options then shares the same instance.
PrimacyOptions WithMaterializedCache(PrimacyOptions options) {
  if (options.block_cache == nullptr) {
    options.block_cache = MakeBlockCache(options.cache);
  }
  return options;
}

PrimacyOptions SerialOptions(PrimacyOptions options) {
  options.threads = 1;
  return options;
}

}  // namespace

CheckpointWriter::CheckpointWriter(PrimacyOptions options)
    : options_(std::move(options)) {
  PutU32(body_, kMagic);
  PutU8(body_, kVersion);
}

void CheckpointWriter::AddStream(const std::string& name,
                                 std::size_t element_width,
                                 std::size_t elements, Bytes stream) {
  telemetry::TraceSpan span("primacy.checkpoint_add", "variable",
                            static_cast<std::uint64_t>(variables_.size()));
  if (finished_) {
    throw InvalidArgumentError("CheckpointWriter: Add after Finish");
  }
  if (name.empty()) {
    throw InvalidArgumentError("CheckpointWriter: empty variable name");
  }
  if (std::any_of(variables_.begin(), variables_.end(),
                  [&](const VariableInfo& v) { return v.name == name; })) {
    throw InvalidArgumentError("CheckpointWriter: duplicate variable " + name);
  }
  VariableInfo info;
  info.name = name;
  info.element_width = element_width;
  info.elements = elements;
  info.stream_offset = body_.size();
  info.stream_bytes = stream.size();
  AppendBytes(body_, stream);
  variables_.push_back(std::move(info));
}

void CheckpointWriter::Add(const std::string& name,
                           std::span<const double> values,
                           std::optional<PrimacyOptions> override_options) {
  PrimacyOptions options = override_options.value_or(options_);
  options.precision = Precision::kDouble;
  AddStream(name, 8, values.size(),
            PrimacyCompressor(options).Compress(values));
}

void CheckpointWriter::Add(const std::string& name,
                           std::span<const float> values,
                           std::optional<PrimacyOptions> override_options) {
  PrimacyOptions options = override_options.value_or(options_);
  options.precision = Precision::kSingle;
  AddStream(name, 4, values.size(),
            PrimacyCompressor(options).Compress(values));
}

Bytes CheckpointWriter::Finish() {
  if (finished_) {
    throw InvalidArgumentError("CheckpointWriter: double Finish");
  }
  finished_ = true;
  Bytes footer;
  PutVarint(footer, variables_.size());
  for (const VariableInfo& info : variables_) {
    PutBlock(footer, BytesFromString(info.name));
    PutU8(footer, static_cast<std::uint8_t>(info.element_width));
    PutVarint(footer, info.elements);
    PutVarint(footer, info.stream_offset);
    PutVarint(footer, info.stream_bytes);
  }
  AppendBytes(body_, footer);
  // Fixed-width footer locator so the reader can seek from the end.
  PutU32(body_, static_cast<std::uint32_t>(footer.size()));
  PutU32(body_, kMagic);
  return std::move(body_);
}

CheckpointReader::CheckpointReader(ByteSpan file, PrimacyOptions decode_options)
    : file_(file),
      decode_options_(WithMaterializedCache(std::move(decode_options))),
      decompressor_(decode_options_),
      serial_decompressor_(SerialOptions(decode_options_)) {
  if (file.size() < 13) {
    throw CorruptStreamError("checkpoint: file too small");
  }
  {
    ByteReader head(file.first(5));
    if (head.GetU32() != kMagic || head.GetU8() != kVersion) {
      throw CorruptStreamError("checkpoint: bad header");
    }
  }
  ByteReader locator(file.subspan(file.size() - 8));
  const std::uint32_t footer_size = locator.GetU32();
  if (locator.GetU32() != kMagic) {
    throw CorruptStreamError("checkpoint: bad footer magic");
  }
  // Subtraction, not addition: footer_size + 13 can wrap in 32 bits and a
  // wrapped sum would pass the check with an out-of-range subspan below.
  if (footer_size > file.size() - 13) {
    throw CorruptStreamError("checkpoint: footer size out of range");
  }
  ByteReader footer(file.subspan(file.size() - 8 - footer_size, footer_size));
  const std::uint64_t count = footer.GetVarint();
  for (std::uint64_t i = 0; i < count; ++i) {
    VariableInfo info;
    info.name = StringFromBytes(footer.GetBlock());
    info.element_width = footer.GetU8();
    if (info.element_width != 4 && info.element_width != 8) {
      throw CorruptStreamError("checkpoint: bad element width");
    }
    info.elements = footer.GetVarint();
    info.stream_offset = footer.GetVarint();
    info.stream_bytes = footer.GetVarint();
    const std::size_t body_end = file.size() - 8 - footer_size;
    if (info.stream_offset < 5 || info.stream_offset > body_end ||
        info.stream_bytes > body_end - info.stream_offset) {
      throw CorruptStreamError("checkpoint: variable extent out of range");
    }
    variables_.push_back(std::move(info));
  }
  if (!footer.AtEnd()) {
    throw CorruptStreamError("checkpoint: trailing footer bytes");
  }
  by_name_.reserve(variables_.size());
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    by_name_.emplace(variables_[i].name, i);  // first entry wins
  }
}

const VariableInfo& CheckpointReader::Find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw InvalidArgumentError("checkpoint: no variable named " + name);
  }
  return variables_[it->second];
}

ByteSpan CheckpointReader::StreamOf(const VariableInfo& info) const {
  return file_.subspan(info.stream_offset, info.stream_bytes);
}

std::vector<double> CheckpointReader::ReadDoubles(
    const std::string& name, PrimacyDecodeStats* stats) const {
  const VariableInfo& info = Find(name);
  if (info.element_width != 8) {
    throw InvalidArgumentError("checkpoint: " + name + " is single precision");
  }
  std::vector<double> values = decompressor_.Decompress(StreamOf(info), stats);
  if (values.size() != info.elements) {
    throw CorruptStreamError("checkpoint: element count mismatch for " + name);
  }
  return values;
}

std::vector<float> CheckpointReader::ReadFloats(const std::string& name,
                                                PrimacyDecodeStats* stats) const {
  const VariableInfo& info = Find(name);
  if (info.element_width != 4) {
    throw InvalidArgumentError("checkpoint: " + name + " is double precision");
  }
  std::vector<float> values =
      decompressor_.DecompressSingle(StreamOf(info), stats);
  if (values.size() != info.elements) {
    throw CorruptStreamError("checkpoint: element count mismatch for " + name);
  }
  return values;
}

std::vector<double> CheckpointReader::ReadDoublesRange(
    const std::string& name, std::uint64_t first_element, std::uint64_t count,
    PrimacyDecodeStats* stats) const {
  const VariableInfo& info = Find(name);
  if (info.element_width != 8) {
    throw InvalidArgumentError("checkpoint: " + name + " is single precision");
  }
  return decompressor_.DecompressRange(StreamOf(info), first_element, count,
                                       stats);
}

std::vector<float> CheckpointReader::ReadFloatsRange(
    const std::string& name, std::uint64_t first_element, std::uint64_t count,
    PrimacyDecodeStats* stats) const {
  const VariableInfo& info = Find(name);
  if (info.element_width != 4) {
    throw InvalidArgumentError("checkpoint: " + name + " is double precision");
  }
  return decompressor_.DecompressRangeSingle(StreamOf(info), first_element,
                                             count, stats);
}

std::vector<Bytes> CheckpointReader::ReadAllRaw(
    PrimacyDecodeStats* stats) const {
  // Variable-parallel restore; each stream decodes serially inside (the
  // outer fan-out already uses the requested concurrency).
  std::vector<Bytes> raw(variables_.size());
  std::vector<PrimacyDecodeStats> per_variable(variables_.size());
  SharedThreadPool().ParallelForSlots(
      variables_.size(), decode_options_.threads,
      [&](std::size_t, std::size_t v) {
        telemetry::TraceSpan span("primacy.checkpoint_read", "variable",
                                  static_cast<std::uint64_t>(v));
        const VariableInfo& info = variables_[v];
        raw[v] =
            serial_decompressor_.DecompressBytes(StreamOf(info), &per_variable[v]);
        if (raw[v].size() != info.elements * info.element_width) {
          throw CorruptStreamError("checkpoint: element count mismatch for " +
                                   info.name);
        }
      });
  if (stats != nullptr) {
    PrimacyDecodeStats totals;
    for (const PrimacyDecodeStats& s : per_variable) {
      totals.chunks_decoded += s.chunks_decoded;
      totals.index_loads += s.index_loads;
      totals.output_bytes += s.output_bytes;
      totals.used_directory = totals.used_directory || s.used_directory;
      totals.chunks_verified += s.chunks_verified;
      totals.cache_hits += s.cache_hits;
      totals.cache_misses += s.cache_misses;
      totals.prefetch_issued += s.prefetch_issued;
      totals.stage.Accumulate(s.stage);
    }
    *stats = totals;
  }
  return raw;
}

std::vector<VariableVerifyResult> CheckpointReader::VerifyAll() const {
  std::vector<VariableVerifyResult> results(variables_.size());
  SharedThreadPool().ParallelForSlots(
      variables_.size(), decode_options_.threads,
      [&](std::size_t, std::size_t v) {
        results[v].name = variables_[v].name;
        results[v].stream = VerifyStream(StreamOf(variables_[v]));
      });
  return results;
}

}  // namespace primacy
