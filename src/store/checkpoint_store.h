// Named-variable checkpoint container: the adoption surface a simulation
// code actually wants. A checkpoint holds any number of named double/float
// arrays, each compressed as an independent PRIMACY stream (so variables
// restore independently and in parallel), with a footer index for O(1)
// lookup without scanning the file.
//
// File format:
//   u32 magic "PCK1", u8 version
//   per variable: the raw PRIMACY stream bytes (self-describing)
//   footer: varint variable_count,
//           per variable: block(name), u8 element_width, varint elements,
//                         varint stream_offset, varint stream_bytes
//   varint footer_size, u32 magic again (footer locator, read from the end)
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/primacy_codec.h"

namespace primacy {

/// Footer entry describing one stored variable.
struct VariableInfo {
  std::string name;
  std::size_t element_width = 8;  // 8 = double, 4 = float
  std::size_t elements = 0;
  std::size_t stream_offset = 0;
  std::size_t stream_bytes = 0;

  double CompressionRatio() const {
    return stream_bytes == 0 ? 0.0
                             : static_cast<double>(elements * element_width) /
                                   static_cast<double>(stream_bytes);
  }
};

/// One variable's outcome from CheckpointReader::VerifyAll.
struct VariableVerifyResult {
  std::string name;
  StreamVerifyResult stream;
};

/// Builds a checkpoint in memory; variables are compressed on Add.
class CheckpointWriter {
 public:
  /// `options` sets the default compression configuration; per-variable
  /// overrides can be passed to Add.
  explicit CheckpointWriter(PrimacyOptions options = {});

  /// Adds a named double array. Names must be unique and non-empty.
  void Add(const std::string& name, std::span<const double> values,
           std::optional<PrimacyOptions> override_options = std::nullopt);
  /// Adds a named float array.
  void Add(const std::string& name, std::span<const float> values,
           std::optional<PrimacyOptions> override_options = std::nullopt);

  /// Finalizes the container (appends the footer). The writer is spent.
  Bytes Finish();

  std::size_t variable_count() const { return variables_.size(); }

 private:
  void AddStream(const std::string& name, std::size_t element_width,
                 std::size_t elements, Bytes stream);

  PrimacyOptions options_;
  Bytes body_;
  std::vector<VariableInfo> variables_;
  bool finished_ = false;
};

/// Reads a checkpoint container. Lookup is footer-driven: nothing is
/// decompressed until a variable is requested.
class CheckpointReader {
 public:
  /// `file` must outlive the reader. `decode_options` carries the decode-side
  /// knobs (threads: within-variable parallel decode for the single-variable
  /// reads, variable-parallel fan-out for ReadAllRaw; cache: when enabled —
  /// or when an explicit block_cache instance is supplied — every read path
  /// of this reader decodes through one shared DecodedBlockCache, so
  /// repeated range reads over the same variable skip the chunk decode).
  /// The variable directory, the name-lookup index, and the decompressor
  /// state are all built here, once, not per read call.
  explicit CheckpointReader(ByteSpan file, PrimacyOptions decode_options = {});

  const std::vector<VariableInfo>& variables() const { return variables_; }

  /// Metadata for `name`; throws InvalidArgumentError if absent.
  const VariableInfo& Find(const std::string& name) const;

  /// Decompress one variable.
  std::vector<double> ReadDoubles(const std::string& name,
                                  PrimacyDecodeStats* stats = nullptr) const;
  std::vector<float> ReadFloats(const std::string& name,
                                PrimacyDecodeStats* stats = nullptr) const;

  /// Partial restore: elements [first_element, first_element + count) of one
  /// variable, decoding only the chunks that cover the range (the variable
  /// must have been written as a v2 stream — any stream this writer
  /// produces — or stored).
  std::vector<double> ReadDoublesRange(const std::string& name,
                                       std::uint64_t first_element,
                                       std::uint64_t count,
                                       PrimacyDecodeStats* stats = nullptr) const;
  std::vector<float> ReadFloatsRange(const std::string& name,
                                     std::uint64_t first_element,
                                     std::uint64_t count,
                                     PrimacyDecodeStats* stats = nullptr) const;

  /// Decompresses every variable, variable-parallel on the shared pool
  /// (decode_options.threads; 0 = hardware concurrency). Returns the raw
  /// element bytes per variable in footer order; `stats` (optional) receives
  /// the decode accounting summed across variables.
  std::vector<Bytes> ReadAllRaw(PrimacyDecodeStats* stats = nullptr) const;

  /// Integrity check without materializing any variable: runs VerifyStream
  /// over every variable's stream (hash-only for v3 streams, structural
  /// decode for v1/v2), variable-parallel on the shared pool. Never throws
  /// on corrupt variables — each failure is reported in its result entry,
  /// in footer order.
  std::vector<VariableVerifyResult> VerifyAll() const;

  /// The decoded-block cache shared by this reader's decode paths; null
  /// when caching is disabled. Exposed for stats rendering and tests.
  const std::shared_ptr<DecodedBlockCache>& cache() const {
    return decompressor_.cache();
  }

 private:
  ByteSpan StreamOf(const VariableInfo& info) const;

  ByteSpan file_;
  PrimacyOptions decode_options_;
  std::vector<VariableInfo> variables_;
  /// Footer-order index by name (duplicate names keep the first entry, as
  /// the old linear scan did).
  std::unordered_map<std::string, std::size_t> by_name_;
  /// Hoisted decode state, built once in the constructor instead of per
  /// read call: a decompressor with the reader's options and a serial
  /// (threads = 1) twin for the variable-parallel fan-out paths. Both share
  /// decode_options_.block_cache.
  PrimacyDecompressor decompressor_;
  PrimacyDecompressor serial_decompressor_;
};

}  // namespace primacy
