// Canonical, length-limited Huffman coding.
//
// Code lengths are computed with the package-merge algorithm (Larmore &
// Hirschberg), which yields optimal codes under a maximum-length constraint;
// codes are then assigned canonically (shorter codes first, ties by symbol)
// so only the length vector needs to be serialized. Encoded bits are written
// bit-reversed through the LSB-first BitWriter so the decoder can peek a
// window and index a flat table — the same layout deflate decoders use.
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bit_io.h"
#include "util/bytes.h"

namespace primacy {

/// Maximum supported code length; 15 matches deflate and keeps the decoder
/// table at 2^15 entries.
inline constexpr unsigned kMaxHuffmanCodeLength = 15;

/// Computes optimal length-limited code lengths for `frequencies`.
/// Symbols with zero frequency get length 0 (no code). If only one symbol has
/// non-zero frequency it is assigned length 1. Throws InvalidArgumentError if
/// the alphabet cannot be coded within `max_length` bits.
std::vector<std::uint8_t> BuildCodeLengths(
    std::span<const std::uint64_t> frequencies,
    unsigned max_length = kMaxHuffmanCodeLength);

/// Encoder side: canonical code words (already bit-reversed for the
/// LSB-first writer) and their lengths.
class HuffmanEncoder {
 public:
  /// Builds canonical codes from a length vector (as produced by
  /// BuildCodeLengths). Throws InvalidArgumentError if the lengths
  /// oversubscribe the Kraft budget.
  explicit HuffmanEncoder(std::span<const std::uint8_t> lengths);

  /// Writes the code for `symbol`; the symbol must have a non-zero length.
  void Encode(BitWriter& writer, std::size_t symbol) const;

  unsigned length(std::size_t symbol) const { return lengths_[symbol]; }
  std::size_t alphabet_size() const { return lengths_.size(); }

 private:
  std::vector<std::uint16_t> codes_;   // bit-reversed canonical codes
  std::vector<std::uint8_t> lengths_;
};

/// Decoder side: flat table lookup over a peeked window of max-length bits.
class HuffmanDecoder {
 public:
  /// Builds the decoding table from the same length vector the encoder used.
  /// The code must be *complete* (Kraft sum exactly 1) unless it is the
  /// degenerate single-symbol code. The lengths come off the wire, so
  /// malformed ones throw CorruptStreamError.
  explicit HuffmanDecoder(std::span<const std::uint8_t> lengths);

  /// Decodes one symbol. Throws CorruptStreamError on an invalid code word.
  std::size_t Decode(BitReader& reader) const;

 private:
  struct Entry {
    std::uint16_t symbol = 0;
    std::uint8_t length = 0;  // 0 marks an invalid window
  };
  std::vector<Entry> table_;  // indexed by max_length_ peeked bits
  unsigned max_length_ = 0;
};

/// Serializes a code-length vector compactly (run-length coded, deflate
/// style: 16=repeat previous, 17/18=zero runs) for embedding in containers.
Bytes SerializeCodeLengths(std::span<const std::uint8_t> lengths);

/// Inverse of SerializeCodeLengths; `alphabet_size` must match.
std::vector<std::uint8_t> DeserializeCodeLengths(ByteSpan data,
                                                 std::size_t alphabet_size);

}  // namespace primacy
