#include "huffman/huffman.h"

#include <algorithm>
#include <array>
#include <iterator>
#include <limits>
#include <utility>

#include "bitstream/byte_io.h"
#include "util/error.h"

namespace primacy {
namespace {

std::uint16_t ReverseBits(std::uint16_t value, unsigned width) {
  std::uint16_t out = 0;
  for (unsigned i = 0; i < width; ++i) {
    out = static_cast<std::uint16_t>((out << 1) | ((value >> i) & 1));
  }
  return out;
}

/// A package in the package-merge algorithm: its total weight plus the leaf
/// symbols it covers. Alphabets in this library are small (<= ~320 symbols:
/// byte values, deflate literal/length symbols, MTF ranks), so carrying the
/// leaf lists explicitly is cheap and keeps the algorithm obviously correct.
struct Package {
  std::uint64_t weight = 0;
  std::vector<std::uint32_t> leaves;
};

bool WeightLess(const Package& a, const Package& b) {
  return a.weight < b.weight;
}

}  // namespace

std::vector<std::uint8_t> BuildCodeLengths(
    std::span<const std::uint64_t> frequencies, unsigned max_length) {
  if (max_length == 0 || max_length > kMaxHuffmanCodeLength) {
    throw InvalidArgumentError("BuildCodeLengths: bad max_length");
  }
  // Symbols are carried as u32 throughout package-merge; reject alphabets
  // the index type cannot represent before the loop below wraps.
  if (frequencies.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw InvalidArgumentError("BuildCodeLengths: alphabet too large");
  }
  std::vector<std::uint8_t> lengths(frequencies.size(), 0);

  std::vector<std::uint32_t> active;
  for (std::uint32_t i = 0; i < frequencies.size(); ++i) {
    if (frequencies[i] != 0) active.push_back(i);
  }
  if (active.empty()) return lengths;
  if (active.size() == 1) {
    lengths[active[0]] = 1;
    return lengths;
  }
  if (active.size() > (1ULL << max_length)) {
    throw InvalidArgumentError(
        "BuildCodeLengths: alphabet too large for max_length");
  }

  // Package-merge: L rounds of pairing followed by merging with the original
  // leaf list; the first 2n-2 packages of the final list determine lengths.
  std::vector<Package> leaf_list;
  leaf_list.reserve(active.size());
  for (const std::uint32_t symbol : active) {
    leaf_list.push_back(Package{frequencies[symbol], {symbol}});
  }
  std::stable_sort(leaf_list.begin(), leaf_list.end(), WeightLess);

  std::vector<Package> current = leaf_list;
  for (unsigned level = 1; level < max_length; ++level) {
    std::vector<Package> packaged;
    packaged.reserve(current.size() / 2);
    for (std::size_t i = 0; i + 1 < current.size(); i += 2) {
      Package merged;
      merged.weight = current[i].weight + current[i + 1].weight;
      merged.leaves = current[i].leaves;
      merged.leaves.insert(merged.leaves.end(), current[i + 1].leaves.begin(),
                           current[i + 1].leaves.end());
      packaged.push_back(std::move(merged));
    }
    std::vector<Package> next;
    next.reserve(leaf_list.size() + packaged.size());
    std::merge(leaf_list.begin(), leaf_list.end(),
               std::make_move_iterator(packaged.begin()),
               std::make_move_iterator(packaged.end()),
               std::back_inserter(next), WeightLess);
    current = std::move(next);
  }

  const std::size_t take = 2 * active.size() - 2;
  PRIMACY_CHECK(current.size() >= take);
  for (std::size_t i = 0; i < take; ++i) {
    for (const std::uint32_t symbol : current[i].leaves) ++lengths[symbol];
  }

  // Sanity: Kraft sum must be exactly 1 for an optimal complete code.
  std::uint64_t kraft = 0;
  for (const std::uint8_t len : lengths) {
    if (len != 0) kraft += 1ULL << (max_length - len);
  }
  PRIMACY_CHECK(kraft == (1ULL << max_length));
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(std::span<const std::uint8_t> lengths)
    : lengths_(lengths.begin(), lengths.end()) {
  codes_.assign(lengths_.size(), 0);

  // Canonical assignment: count codes per length, derive the first code of
  // each length, then hand out codes in symbol order.
  std::array<std::uint32_t, kMaxHuffmanCodeLength + 1> count{};
  for (const std::uint8_t len : lengths_) {
    if (len > kMaxHuffmanCodeLength) {
      throw InvalidArgumentError("HuffmanEncoder: length > max");
    }
    ++count[len];
  }
  count[0] = 0;
  std::array<std::uint32_t, kMaxHuffmanCodeLength + 2> next_code{};
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxHuffmanCodeLength; ++len) {
    code = (code + count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (std::size_t symbol = 0; symbol < lengths_.size(); ++symbol) {
    const unsigned len = lengths_[symbol];
    if (len == 0) continue;
    const std::uint32_t canonical = next_code[len]++;
    if (canonical >= (1ULL << len)) {
      throw InvalidArgumentError("HuffmanEncoder: oversubscribed lengths");
    }
    codes_[symbol] =
        ReverseBits(static_cast<std::uint16_t>(canonical), len);
  }
}

void HuffmanEncoder::Encode(BitWriter& writer, std::size_t symbol) const {
  PRIMACY_CHECK(symbol < lengths_.size() && lengths_[symbol] != 0);
  writer.WriteBits(codes_[symbol], lengths_[symbol]);
}

HuffmanDecoder::HuffmanDecoder(std::span<const std::uint8_t> lengths) {
  // Table entries store the symbol as u16; a larger alphabet would decode
  // to silently-truncated symbols. The lengths come off the wire, so this
  // is a stream-validity error, not a programming error.
  if (lengths.size() > std::numeric_limits<std::uint16_t>::max() + 1u) {
    throw CorruptStreamError("HuffmanDecoder: alphabet too large");
  }
  for (const std::uint8_t len : lengths) {
    if (len > kMaxHuffmanCodeLength) {
      throw CorruptStreamError("HuffmanDecoder: length > max");
    }
    max_length_ = std::max<unsigned>(max_length_, len);
  }
  if (max_length_ == 0) {
    throw CorruptStreamError("HuffmanDecoder: empty code");
  }
  table_.assign(1ULL << max_length_, Entry{});

  // Recompute canonical codes exactly as the encoder does, then stamp every
  // window whose low `len` bits equal the (bit-reversed) code.
  std::array<std::uint32_t, kMaxHuffmanCodeLength + 1> count{};
  for (const std::uint8_t len : lengths) ++count[len];
  count[0] = 0;
  std::array<std::uint32_t, kMaxHuffmanCodeLength + 2> next_code{};
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxHuffmanCodeLength; ++len) {
    code = (code + count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (std::size_t symbol = 0; symbol < lengths.size(); ++symbol) {
    const unsigned len = lengths[symbol];
    if (len == 0) continue;
    const std::uint32_t canonical = next_code[len]++;
    if (canonical >= (1ULL << len)) {
      throw CorruptStreamError("HuffmanDecoder: oversubscribed lengths");
    }
    const std::uint16_t reversed =
        ReverseBits(static_cast<std::uint16_t>(canonical), len);
    const std::size_t stride = 1ULL << len;
    for (std::size_t window = reversed; window < table_.size();
         window += stride) {
      table_[window] =
          Entry{static_cast<std::uint16_t>(symbol), static_cast<std::uint8_t>(len)};
    }
  }
}

std::size_t HuffmanDecoder::Decode(BitReader& reader) const {
  const std::uint64_t window = reader.PeekBits(max_length_);
  const Entry entry = table_[window];
  if (entry.length == 0) {
    throw CorruptStreamError("HuffmanDecoder: invalid code word");
  }
  reader.SkipBits(entry.length);
  return entry.symbol;
}

Bytes SerializeCodeLengths(std::span<const std::uint8_t> lengths) {
  // Simple byte-level RLE: varint run count, then (value u8, run varint)
  // pairs. Length vectors are dominated by runs of zeros and of the modal
  // length, so this stays small without a second Huffman layer.
  Bytes out;
  std::vector<std::pair<std::uint8_t, std::uint64_t>> runs;
  for (const std::uint8_t len : lengths) {
    if (!runs.empty() && runs.back().first == len) {
      ++runs.back().second;
    } else {
      runs.emplace_back(len, 1);
    }
  }
  PutVarint(out, runs.size());
  for (const auto& [value, run] : runs) {
    PutU8(out, value);
    PutVarint(out, run);
  }
  return out;
}

std::vector<std::uint8_t> DeserializeCodeLengths(ByteSpan data,
                                                 std::size_t alphabet_size) {
  ByteReader reader(data);
  const std::uint64_t run_count = reader.GetVarint();
  std::vector<std::uint8_t> lengths;
  lengths.reserve(alphabet_size);
  for (std::uint64_t i = 0; i < run_count; ++i) {
    const std::uint8_t value = reader.GetU8();
    const std::uint64_t run = reader.GetVarint();
    if (lengths.size() + run > alphabet_size) {
      throw CorruptStreamError("DeserializeCodeLengths: overlong runs");
    }
    lengths.insert(lengths.end(), run, value);
  }
  if (lengths.size() != alphabet_size) {
    throw CorruptStreamError("DeserializeCodeLengths: size mismatch");
  }
  return lengths;
}

}  // namespace primacy
