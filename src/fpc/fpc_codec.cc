#include "fpc/fpc_codec.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "bitstream/byte_io.h"
#include "util/error.h"

namespace primacy {
namespace {

/// Shared predictor state; compression and decompression run the identical
/// update sequence so both sides stay in lockstep.
class Predictors {
 public:
  explicit Predictors(unsigned table_bits)
      : mask_((1ULL << table_bits) - 1),
        fcm_(mask_ + 1, 0),
        dfcm_(mask_ + 1, 0) {}

  std::uint64_t PredictFcm() const { return fcm_[fcm_hash_]; }
  std::uint64_t PredictDfcm() const { return dfcm_[dfcm_hash_] + last_; }

  void Update(std::uint64_t actual) {
    fcm_[fcm_hash_] = actual;
    fcm_hash_ = ((fcm_hash_ << 6) ^ (actual >> 48)) & mask_;
    const std::uint64_t delta = actual - last_;
    dfcm_[dfcm_hash_] = delta;
    dfcm_hash_ = ((dfcm_hash_ << 2) ^ (delta >> 40)) & mask_;
    last_ = actual;
  }

 private:
  std::uint64_t mask_;
  std::vector<std::uint64_t> fcm_;
  std::vector<std::uint64_t> dfcm_;
  std::uint64_t fcm_hash_ = 0;
  std::uint64_t dfcm_hash_ = 0;
  std::uint64_t last_ = 0;
};

unsigned LeadingZeroBytes(std::uint64_t v) {
  if (v == 0) return 8;
  return static_cast<unsigned>(std::countl_zero(v)) / 8;
}

/// FPC's 3-bit code: lzb 4 is mapped down to 3 so {0,1,2,3,5,6,7,8} fit.
unsigned LzbToCode(unsigned lzb) {
  if (lzb == 4) return 3;
  return lzb < 4 ? lzb : lzb - 1;
}

unsigned CodeToLzb(unsigned code) { return code < 4 ? code : code + 1; }

std::uint64_t LoadU64(ByteSpan data, std::size_t index) {
  std::uint64_t v;
  std::memcpy(&v, data.data() + index * 8, 8);
  return v;
}

}  // namespace

FpcCodec::FpcCodec(unsigned table_bits) : table_bits_(table_bits) {
  if (table_bits_ < 4 || table_bits_ > 24) {
    throw InvalidArgumentError("FpcCodec: table_bits out of range [4,24]");
  }
}

Bytes FpcCodec::Compress(ByteSpan data) const {
  const std::size_t value_count = data.size() / 8;
  const std::size_t tail = data.size() % 8;

  Bytes out;
  PutVarint(out, data.size());
  PutU8(out, static_cast<std::uint8_t>(table_bits_));
  PutVarint(out, value_count);

  Predictors predictors(table_bits_);
  Bytes headers((value_count + 1) / 2, std::byte{0});
  Bytes residuals;
  residuals.reserve(data.size() / 2);

  for (std::size_t i = 0; i < value_count; ++i) {
    const std::uint64_t actual = LoadU64(data, i);
    const std::uint64_t xor_fcm = actual ^ predictors.PredictFcm();
    const std::uint64_t xor_dfcm = actual ^ predictors.PredictDfcm();
    const bool use_dfcm = LeadingZeroBytes(xor_dfcm) > LeadingZeroBytes(xor_fcm);
    const std::uint64_t residual = use_dfcm ? xor_dfcm : xor_fcm;
    predictors.Update(actual);

    const unsigned code = LzbToCode(LeadingZeroBytes(residual));
    const unsigned kept = 8 - CodeToLzb(code);
    const auto header =
        static_cast<std::uint8_t>((use_dfcm ? 8u : 0u) | code);
    if (i % 2 == 0) {
      headers[i / 2] = static_cast<std::byte>(header);
    } else {
      headers[i / 2] =
          static_cast<std::byte>(static_cast<std::uint8_t>(headers[i / 2]) |
                                 (header << 4));
    }
    // Significant bytes, least significant first.
    for (unsigned b = 0; b < kept; ++b) {
      residuals.push_back(static_cast<std::byte>((residual >> (8 * b)) & 0xff));
    }
  }

  AppendBytes(out, headers);
  AppendBytes(out, residuals);
  AppendBytes(out, data.subspan(value_count * 8, tail));

  if (out.size() > data.size() + 16) {
    // Stored fallback shares the container: value_count 0 means the body is
    // the raw input.
    Bytes stored;
    PutVarint(stored, data.size());
    PutU8(stored, static_cast<std::uint8_t>(table_bits_));
    PutVarint(stored, 0);
    AppendBytes(stored, data);
    return stored;
  }
  return out;
}

Bytes FpcCodec::Decompress(ByteSpan data) const {
  ByteReader reader(data);
  const std::uint64_t original_size = reader.GetVarint();
  const std::uint8_t table_bits = reader.GetU8();
  if (table_bits < 4 || table_bits > 24) {
    throw CorruptStreamError("fpc: bad table_bits");
  }
  const std::uint64_t value_count = reader.GetVarint();
  const std::uint64_t expected_values = original_size / 8;

  if (value_count == 0 && expected_values != 0) {
    // Stored fallback.
    const ByteSpan raw = reader.GetRaw(original_size);
    return ToBytes(raw);
  }
  if (value_count != expected_values) {
    throw CorruptStreamError("fpc: value count mismatch");
  }

  const ByteSpan headers = reader.GetRaw((value_count + 1) / 2);
  Bytes out;
  out.reserve(std::min<std::uint64_t>(original_size, 1u << 26));
  Predictors predictors(table_bits);

  for (std::uint64_t i = 0; i < value_count; ++i) {
    const auto packed = static_cast<std::uint8_t>(headers[i / 2]);
    const std::uint8_t header =
        (i % 2 == 0) ? (packed & 0x0f) : (packed >> 4);
    const bool use_dfcm = (header & 8u) != 0;
    const unsigned kept = 8 - CodeToLzb(header & 7u);

    std::uint64_t residual = 0;
    const ByteSpan bytes = reader.GetRaw(kept);
    for (unsigned b = 0; b < kept; ++b) {
      residual |= static_cast<std::uint64_t>(bytes[b]) << (8 * b);
    }
    const std::uint64_t prediction =
        use_dfcm ? predictors.PredictDfcm() : predictors.PredictFcm();
    const std::uint64_t actual = prediction ^ residual;
    predictors.Update(actual);
    for (unsigned b = 0; b < 8; ++b) {
      out.push_back(static_cast<std::byte>((actual >> (8 * b)) & 0xff));
    }
  }

  const std::uint64_t tail = original_size % 8;
  const ByteSpan tail_bytes = reader.GetRaw(tail);
  AppendBytes(out, tail_bytes);
  if (!reader.AtEnd()) {
    throw CorruptStreamError("fpc: trailing bytes");
  }
  if (out.size() != original_size) {
    throw CorruptStreamError("fpc: size mismatch");
  }
  return out;
}

}  // namespace primacy
