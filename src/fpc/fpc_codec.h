// FPC (Burtscher & Ratanaworabhan, IEEE TC 2009): high-speed predictive
// compressor for IEEE-754 double streams. Two hash-table value predictors —
// FCM (finite context) and DFCM (differential finite context) — each guess
// the next 64-bit value; the better guess is XORed with the actual value and
// the leading zero bytes are elided. Per value: a 4-bit header (1 bit
// predictor choice, 3 bits leading-zero-byte code with 4 mapped to 3) plus
// the surviving residual bytes.
//
// The paper compares PRIMACY against fpc in Section V; this is the faithful
// from-scratch comparator (DESIGN.md substitution table).
//
// Container format:
//   varint original_size, u8 table_bits,
//   varint value_count, packed headers (2 per byte), residual bytes,
//   raw tail bytes (original_size % 8 trailing bytes stored verbatim).
#pragma once

#include "compress/codec.h"

namespace primacy {

class FpcCodec final : public Codec {
 public:
  /// `table_bits` sizes both predictor tables (2^table_bits entries each);
  /// the published defaults are in the 16–20 range.
  explicit FpcCodec(unsigned table_bits = 16);

  std::string_view name() const override { return "fpc"; }
  Bytes Compress(ByteSpan data) const override;
  Bytes Decompress(ByteSpan data) const override;

 private:
  unsigned table_bits_;
};

}  // namespace primacy
