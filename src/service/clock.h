// Virtual-time seam for the service layer.
//
// Every time-dependent decision in src/service — batch flush timeouts,
// quota refill, retry-after hints, latency accounting — reads time through
// a ServiceClock instead of std::chrono directly, so the batching and
// backpressure logic is testable without a single wall-clock sleep: tests
// inject a VirtualClock and advance it explicitly, and a timeout "fires"
// the instant the test says it does.
//
// Wakeup protocol (how a timed wait works without polling): a component
// that will ever block with WaitUntil registers its (mutex, condvar) pair
// once at construction. SystemServiceClock ignores the registration and
// maps WaitUntil onto condition_variable::wait_until. VirtualClock keeps
// the registered pairs and, on Advance, locks each pair's mutex and
// notifies its condvar — locking the mutex first is what makes the handoff
// race-free: a waiter checks NowNs() and enters cv.Wait() while holding
// its own mutex, so Advance either observes the new time before the waiter
// checks it, or blocks on the mutex until the waiter is actually waiting
// and the notify cannot be lost.
//
// All waits go through primacy::Mutex/primacy::CondVar (util/mutex.h) so
// Clang Thread Safety Analysis can prove the protocol: WaitUntil REQUIRES
// the caller's mutex, and misuse of the clock seam is a compile error under
// -DPRIMACY_THREAD_SAFETY=ON.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::service {

/// Deadline value meaning "no deadline: wait for a notify only".
inline constexpr std::uint64_t kNoDeadlineNs = ~std::uint64_t{0};

class ServiceClock {
 public:
  virtual ~ServiceClock() = default;

  /// Nanoseconds since this clock's epoch (process start for the system
  /// clock, the constructor argument for a virtual clock). Monotonic.
  virtual std::uint64_t NowNs() const = 0;

  /// Declares that `cv` (guarded by `mutex`) will be passed to WaitUntil.
  /// Both must stay valid until UnregisterWaiter; registration must not be
  /// called while holding `mutex` (VirtualClock::Advance acquires it).
  virtual void RegisterWaiter(primacy::Mutex* mutex, primacy::CondVar* cv) {
    (void)mutex;
    (void)cv;
  }
  virtual void UnregisterWaiter(primacy::CondVar* cv) { (void)cv; }

  /// Blocks on `cv` until the clock reaches `deadline_ns`, the cv is
  /// notified, or spuriously — callers always re-check their predicate and
  /// the clock in a loop. `mu` must be held by the caller and registered
  /// with RegisterWaiter (system clocks don't care, virtual clocks do); it
  /// is released for the duration of the wait and re-held on return.
  virtual void WaitUntil(primacy::Mutex& mu, primacy::CondVar& cv,
                         std::uint64_t deadline_ns) PRIMACY_REQUIRES(mu) = 0;
};

/// Wall-clock implementation over std::chrono::steady_clock. All instances
/// share one process-wide epoch so timestamps are comparable across
/// components that were constructed at different moments.
class SystemServiceClock final : public ServiceClock {
 public:
  /// Process-wide instance; the default when ServiceOptions.clock is null.
  static SystemServiceClock& Instance();

  std::uint64_t NowNs() const override;
  void WaitUntil(primacy::Mutex& mu, primacy::CondVar& cv,
                 std::uint64_t deadline_ns) override PRIMACY_REQUIRES(mu);
};

/// Test clock: time moves only when Advance/AdvanceTo is called. Thread-safe
/// — any thread may advance while others wait; see the header comment for
/// why wakeups cannot be lost. Waiting on a (mutex, cv) pair that was never
/// registered is a test bug: Advance cannot wake it.
class VirtualClock final : public ServiceClock {
 public:
  explicit VirtualClock(std::uint64_t start_ns = 0) : now_ns_(start_ns) {}

  std::uint64_t NowNs() const override {
    return now_ns_.load(std::memory_order_acquire);
  }

  void RegisterWaiter(primacy::Mutex* mutex, primacy::CondVar* cv) override
      PRIMACY_EXCLUDES(mu_);
  void UnregisterWaiter(primacy::CondVar* cv) override PRIMACY_EXCLUDES(mu_);
  void WaitUntil(primacy::Mutex& mu, primacy::CondVar& cv,
                 std::uint64_t deadline_ns) override PRIMACY_REQUIRES(mu);

  /// Moves time forward by `delta_ns` and wakes every registered waiter
  /// (each re-checks its own deadline). Returns the new now. Must not be
  /// called while holding any registered waiter's mutex.
  std::uint64_t Advance(std::uint64_t delta_ns) PRIMACY_EXCLUDES(mu_);

  /// Moves time forward to `now_ns` (no-op if time is already past it).
  void AdvanceTo(std::uint64_t now_ns) PRIMACY_EXCLUDES(mu_);

 private:
  void NotifyAllWaiters() PRIMACY_EXCLUDES(mu_);

  std::atomic<std::uint64_t> now_ns_;
  // Guards the waiter list (not the time — that is the atomic above, so
  // NowNs never touches a lock on the hot path).
  mutable primacy::Mutex mu_;
  std::vector<std::pair<primacy::Mutex*, primacy::CondVar*>> waiters_
      PRIMACY_GUARDED_BY(mu_);
};

}  // namespace primacy::service
