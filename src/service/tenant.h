// Per-tenant admission state: byte quotas, in-flight limits, backpressure
// policy, and the tenant's share of the service's decoded-block cache.
//
// Quotas are a classic token bucket, but refilled lazily from a
// ServiceClock instead of a refill thread: every admission attempt first
// credits the tokens the elapsed virtual time earned. The arithmetic is
// exact-integer (a byte·ns carry instead of floating accrual), so a test
// that advances a VirtualClock by precisely the returned retry-after always
// lands on the admit side of the boundary — determinism the virtual-clock
// suite relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace primacy::service {

/// What to do with a request the tenant's quota or in-flight limit cannot
/// admit right now.
enum class BackpressurePolicy {
  /// Fail fast: the response carries kRejectedQuota / kRejectedInflight and
  /// a retry_after_ns hint (time until the bucket can cover the request).
  kReject,
  /// Hold the submitting caller inside Submit until capacity frees up
  /// (quota refill or a completion). Blocking respects the service clock,
  /// so virtual-clock tests unblock by advancing time.
  kBlock,
};

struct TenantConfig {
  /// Label for stats and telemetry series; must match [A-Za-z0-9_.-]+ (it
  /// is rendered into Prometheus label values).
  std::string name;
  /// Sustained admission rate in bytes/second; 0 = unlimited (no bucket).
  std::uint64_t quota_bytes_per_sec = 0;
  /// Bucket capacity: how many bytes may be admitted in one burst. 0 with a
  /// nonzero rate defaults to one second of rate.
  std::uint64_t quota_burst_bytes = 0;
  /// Admitted-but-not-completed request cap; 0 = unlimited.
  std::size_t max_inflight = 0;
  BackpressurePolicy on_pressure = BackpressurePolicy::kReject;
  /// This tenant's fraction of ServiceOptions.cache_capacity_bytes, carved
  /// into a private decoded-block cache for its decompress traffic (so one
  /// tenant's working set can never evict another's). <= 0 disables the
  /// tenant's cache partition.
  double cache_share = 0.0;
  /// Byte budget for the tenant's compress-result memo: a content-addressed
  /// LRU over (input, stream) pairs that serves repeated compression of the
  /// same payload from memory — the compress-side analogue of the decoded
  /// -block cache partition. Hits are full-payload verified (a 64-bit hash
  /// collision degrades to a miss, never a wrong stream), which is only
  /// sound because the codec is deterministic for fixed options. 0 = off.
  std::size_t memo_bytes = 0;
};

/// Lazily refilled token bucket over a ServiceClock timeline. Not
/// thread-safe on its own: the service serializes calls under its mutex.
class TokenBucket {
 public:
  /// `rate` in bytes/sec (0 = unlimited: every TryCharge succeeds),
  /// `burst` in bytes, `now_ns` the clock reading at construction.
  TokenBucket(std::uint64_t rate, std::uint64_t burst, std::uint64_t now_ns);

  /// Credits tokens earned since the last refill, capped at the burst size.
  void Refill(std::uint64_t now_ns);

  /// Spends `bytes` if available (callers Refill first). Oversized requests
  /// (bytes > burst) are charged by draining the bucket into debt-free
  /// rejection: TryCharge returns false and RetryAfterNs reports the time
  /// until a full burst, the closest the bucket can get.
  bool TryCharge(std::uint64_t bytes);

  /// Nanoseconds of refill needed before `bytes` could be charged — the
  /// retry_after hint. Exact: advancing the clock by this amount and
  /// refilling guarantees TryCharge(bytes) succeeds, provided bytes fits
  /// the burst. Requests beyond the burst report time-to-full-burst.
  std::uint64_t RetryAfterNs(std::uint64_t bytes) const;

  std::uint64_t available() const { return available_; }
  /// Effective bucket capacity (burst == 0 defaulted to one second of rate).
  std::uint64_t burst() const { return burst_; }
  bool unlimited() const { return rate_ == 0; }

 private:
  std::uint64_t rate_;   // bytes per second
  std::uint64_t burst_;  // bucket capacity in bytes
  std::uint64_t available_;
  std::uint64_t last_refill_ns_;
  /// Sub-byte refill remainder in byte·nanoseconds, in [0, 1e9). Carrying
  /// it instead of truncating keeps long refill sequences exact regardless
  /// of how the elapsed time is sliced.
  std::uint64_t carry_byte_ns_ = 0;
};

/// Point-in-time view of one tenant's accounting (exact functional
/// counters, maintained under the service mutex — available even when the
/// build compiles telemetry out).
struct TenantStatsSnapshot {
  std::uint64_t admitted_requests = 0;
  std::uint64_t admitted_bytes = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_inflight = 0;
  std::uint64_t rejected_bytes = 0;
  std::uint64_t completed = 0;  // kOk responses
  std::uint64_t cancelled = 0;  // drained before execution
  std::uint64_t failed = 0;     // codec threw; kError responses
  std::size_t inflight = 0;
  std::uint64_t quota_available_bytes = 0;
  /// Decoded-block cache partition counters; all-zero when the tenant has
  /// no cache share.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// Compress-result memo counters; all-zero when memo_bytes == 0.
  std::uint64_t memo_hits = 0;
  std::size_t memo_bytes_used = 0;
};

}  // namespace primacy::service
