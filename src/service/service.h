// Multi-tenant compression/decompression service over the PRIMACY codec.
//
// This is the long-lived request layer the ROADMAP's "serves millions of
// users" north star asks for: callers submit small compress/decompress
// requests tagged with a tenant, an admission queue coalesces them into
// chunk-sized batches (flush on size, count, or timeout — see
// batch_queue.h), and batches execute on the shared thread pool through a
// pool of reusable codec worker contexts, so per-request dispatch and
// codec-state construction cost is amortized across the batch.
//
// Per tenant, admission enforces a byte-rate token bucket and an in-flight
// cap with explicit backpressure: BackpressurePolicy::kReject fails fast
// with a retry_after_ns hint, kBlock holds the submitter until capacity
// frees. Each tenant may also own a share of the service's decoded-block
// cache budget as a private partition, so one tenant's hot read set never
// evicts another's.
//
// Every response is byte-identical to the corresponding direct library
// call (PrimacyCompressor::CompressBytes / PrimacyDecompressor::
// DecompressBytes) — batching changes when and where work runs, never what
// it produces. The service_load bench hash-verifies this on every request.
//
// All time flows through a ServiceClock (clock.h), so the whole layer —
// flush timeouts, quota refill, retry-after, latency accounting — is
// driven deterministically by a VirtualClock in tests, with no real sleeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/primacy_codec.h"
#include "service/batch_queue.h"
#include "service/clock.h"
#include "service/tenant.h"
#include "util/bytes.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::service {

namespace internal {
struct Tenant;  // per-tenant admission state (service.cc)
}  // namespace internal

enum class ServiceStatus : std::uint8_t {
  kOk,
  /// Quota bucket cannot cover the request; retry_after_ns says when it can.
  kRejectedQuota,
  /// Tenant is at its in-flight cap; retry_after_ns is a coarse hint.
  kRejectedInflight,
  /// The tenant was drained after this request was admitted.
  kCancelled,
  /// The codec threw (corrupt stream on decompress, bad arguments); the
  /// message is in `error`.
  kError,
  /// Submitted during/after shutdown.
  kShuttingDown,
};

struct ServiceResponse {
  ServiceStatus status = ServiceStatus::kError;
  /// Compressed stream (compress) or restored bytes (decompress); empty
  /// unless status == kOk.
  Bytes payload;
  /// For kRejected*: nanoseconds until the request could be admitted.
  std::uint64_t retry_after_ns = 0;
  std::string error;

  bool ok() const { return status == ServiceStatus::kOk; }
};

struct ServiceOptions {
  /// Codec options every request is served with. `threads` is forced to 1
  /// per request — parallelism comes from batching across requests, and the
  /// serial path is what the reusable worker contexts accelerate.
  PrimacyOptions codec;
  BatchOptions batch;
  /// Concurrent codec slots one batch may use (0 = shared-pool width).
  /// Items within a batch execute in parallel across slots; each slot reuses
  /// one checked-out worker context for every item it claims.
  std::size_t max_batch_parallelism = 0;
  /// Total decoded-block cache budget partitioned across tenants by their
  /// cache_share (0 = no tenant caches).
  std::size_t cache_capacity_bytes = 0;
  /// Shards per tenant cache partition.
  std::size_t cache_shards = 4;
  /// Time source; null = the process-wide SystemServiceClock. Not owned;
  /// must outlive the service.
  ServiceClock* clock = nullptr;
  /// Slow-request watchdog SLO: a request whose admit-to-completion latency
  /// exceeds this is recorded in the slow-request log and counted in
  /// primacy_slow_requests_total. 0 disables the watchdog.
  std::uint64_t slow_request_slo_ns = 0;
  /// Newest slow-request events retained for SlowRequests()/StatusJson().
  std::size_t slow_request_log_capacity = 64;
};

/// One watchdog capture: the context of a request that blew through the
/// latency SLO, bounded-log'd so a latency incident is diagnosable from
/// /statusz without trace archaeology.
struct SlowRequestEvent {
  std::string tenant;
  std::string type;  // "compress" | "decompress"
  ServiceStatus status = ServiceStatus::kError;
  std::size_t bytes = 0;
  std::uint64_t admit_ns = 0;
  std::uint64_t latency_ns = 0;
  std::uint64_t slo_ns = 0;
  /// Admission-queue depth and the tenant's in-flight count at completion —
  /// the first question in any latency incident is "was it queueing?".
  std::size_t queue_depth = 0;
  std::size_t tenant_inflight = 0;
};

/// Service-wide exact counters (functional, kept under the service mutex —
/// meaningful even when telemetry is compiled out). Batch counters come
/// from the admission queue.
struct ServiceStatsSnapshot {
  std::uint64_t admitted_requests = 0;
  std::uint64_t admitted_bytes = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_inflight = 0;
  std::uint64_t rejected_bytes = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  BatchQueue::Stats batch;
};

class CompressionService;

/// Streamed-upload session: a tenant appends payload bytes incrementally
/// and Finish() routes the whole upload through the normal admission +
/// batching path, producing a one-shot (seekable, v3 checksummed) stream
/// byte-identical to a direct CompressBytes of the concatenation.
///
/// Only seekable output targets are supported: a non-seekable sink would
/// silently degrade to format v1 — PrimacyStreamWriter cannot seek back to
/// write the v2/v3 chunk directory + footer (ROADMAP "streaming writer
/// parity") — losing random access and checksums. BeginUpload rejects that
/// with InvalidArgumentError instead of degrading.
class UploadSession {
 public:
  UploadSession(UploadSession&&) = default;
  UploadSession& operator=(UploadSession&&) = default;

  /// Buffers upload bytes; throws after Finish().
  void Append(ByteSpan data);

  /// Submits the buffered upload as one compress request (admission rules
  /// apply: quota, in-flight cap, batching). The session is spent.
  std::future<ServiceResponse> Finish();

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  friend class CompressionService;
  UploadSession(CompressionService* service, std::string tenant)
      : service_(service), tenant_(std::move(tenant)) {}

  CompressionService* service_;
  std::string tenant_;
  Bytes buffer_;
  bool finished_ = false;
};

/// How an upload's output will be consumed; see UploadSession.
enum class UploadSink : std::uint8_t {
  /// Output lands somewhere rewritable (memory, a regular file): the
  /// service can emit a complete seekable v3 stream.
  kSeekableBuffer,
  /// Output is write-once/append-only (a socket, a pipe): would force the
  /// v1-only streaming writer. Rejected.
  kNonSeekableStream,
};

class CompressionService {
 public:
  explicit CompressionService(ServiceOptions options);

  /// Drains the admission queue, waits for every dispatched batch to
  /// finish (all futures are fulfilled), and joins the flusher.
  ~CompressionService();

  CompressionService(const CompressionService&) = delete;
  CompressionService& operator=(const CompressionService&) = delete;

  /// Registers a tenant before any traffic for it. Throws on duplicate
  /// names, names not matching [A-Za-z0-9_.-]+, or cache_share outside
  /// [0, 1].
  void AddTenant(const TenantConfig& config);

  /// Submits one request. The future is always fulfilled: with the result,
  /// a rejection (policy kReject), kCancelled (tenant drained first), or
  /// kError (codec failure). With policy kBlock the call itself may block
  /// until quota/in-flight capacity frees. Unknown tenants throw
  /// InvalidArgumentError.
  std::future<ServiceResponse> SubmitCompress(std::string_view tenant,
                                              Bytes payload);
  std::future<ServiceResponse> SubmitDecompress(std::string_view tenant,
                                                Bytes stream);

  /// As SubmitDecompress, but decodes only elements
  /// [first_element, first_element + element_count) of the stream — the
  /// random-access path the transport layer exposes as DecompressRange.
  std::future<ServiceResponse> SubmitDecompressRange(
      std::string_view tenant, Bytes stream, std::uint64_t first_element,
      std::uint64_t element_count);

  /// Opens a streamed-upload session; sink must be seekable (see
  /// UploadSession).
  UploadSession BeginUpload(std::string_view tenant, UploadSink sink);

  /// Cancels the tenant's admitted-but-not-executed requests (their futures
  /// resolve kCancelled) and flushes the queue so the cancellations land
  /// promptly. Requests admitted after this call proceed normally. Returns
  /// the number of requests that were in flight at the cut.
  std::size_t DrainTenant(std::string_view tenant);

  /// Force-flushes the admission queue (tests and latency-sensitive
  /// callers; normal operation relies on the size/count/timeout triggers).
  void Flush();

  ServiceStatsSnapshot Stats() const;
  TenantStatsSnapshot TenantStats(std::string_view tenant) const;

  /// The watchdog's bounded slow-request log, oldest first (empty unless
  /// ServiceOptions::slow_request_slo_ns is set).
  std::vector<SlowRequestEvent> SlowRequests() const;

  /// Point-in-time service state as a JSON object (per-tenant quota /
  /// in-flight / cache counters, queue depth, the slow-request log) — the
  /// fragment the ObservabilityHub serves under /statusz.
  std::string StatusJson() const;

  const ServiceOptions& options() const { return options_; }

 private:
  enum class RequestType : std::uint8_t {
    kCompress,
    kDecompress,
    kDecompressRange,
  };

  /// `first_element`/`element_count` are meaningful only for
  /// kDecompressRange.
  std::future<ServiceResponse> Submit(RequestType type,
                                      std::string_view tenant_name,
                                      Bytes payload,
                                      std::uint64_t first_element = 0,
                                      std::uint64_t element_count = 0)
      PRIMACY_EXCLUDES(mu_);
  internal::Tenant& FindTenant(std::string_view name) const
      PRIMACY_EXCLUDES(mu_);
  void DispatchBatch(BatchQueue::Batch&& batch) PRIMACY_EXCLUDES(mu_);
  void ExecuteBatch(BatchQueue::Batch& batch);

  CodecContext* CheckOutContext() PRIMACY_EXCLUDES(context_mu_);
  void ReturnContext(CodecContext* context) PRIMACY_EXCLUDES(context_mu_);

  ServiceOptions options_;
  ServiceClock* clock_;  // options_.clock or the system clock

  /// Service-wide admission/completion lock. Also guards, cross-object, the
  /// admission state inside each internal::Tenant (bucket, inflight,
  /// cancel_epoch, stats) — see the Tenant definition in service.cc. Lock
  /// order: mu_ before a tenant's memo_mu; BatchQueue's internal lock is
  /// never taken while mu_ is held.
  mutable primacy::Mutex mu_;
  /// Paired with mu_. Wakes blocked submitters (quota refill via clock
  /// Advance, completions) and the destructor's outstanding-batch wait.
  /// Registered with the clock so VirtualClock::Advance can wake timed
  /// quota waits.
  primacy::CondVar cv_;
  std::unordered_map<std::string, std::unique_ptr<internal::Tenant>> tenants_
      PRIMACY_GUARDED_BY(mu_);
  ServiceStatsSnapshot stats_ PRIMACY_GUARDED_BY(mu_);
  /// Watchdog log, newest at the back, capped at slow_request_log_capacity.
  std::deque<SlowRequestEvent> slow_requests_ PRIMACY_GUARDED_BY(mu_);
  std::size_t outstanding_batches_ PRIMACY_GUARDED_BY(mu_) = 0;
  /// Threads currently inside Submit (blocked or resolving). The destructor
  /// drains this to zero after setting stopping_, so a submitter woken into
  /// the kShuttingDown path never races member teardown.
  std::size_t active_submitters_ PRIMACY_GUARDED_BY(mu_) = 0;
  bool stopping_ PRIMACY_GUARDED_BY(mu_) = false;

  /// Reusable codec worker state: checked out per batch slot, returned when
  /// the slot finishes, so encoder scratch and solver instances persist
  /// across batches instead of being rebuilt per request.
  primacy::Mutex context_mu_;
  std::vector<std::unique_ptr<CodecContext>> contexts_
      PRIMACY_GUARDED_BY(context_mu_);
  std::vector<CodecContext*> free_contexts_ PRIMACY_GUARDED_BY(context_mu_);

  /// Declared last: the queue's flusher may touch everything above.
  std::unique_ptr<BatchQueue> queue_;
};

}  // namespace primacy::service
