#include "service/tenant.h"

#include <algorithm>

namespace primacy::service {

namespace {
constexpr std::uint64_t kNsPerSec = 1'000'000'000ULL;
}  // namespace

TokenBucket::TokenBucket(std::uint64_t rate, std::uint64_t burst,
                         std::uint64_t now_ns)
    : rate_(rate),
      burst_(rate == 0 ? 0 : (burst == 0 ? rate : burst)),
      available_(burst_),
      last_refill_ns_(now_ns) {}

void TokenBucket::Refill(std::uint64_t now_ns) {
  if (rate_ == 0 || now_ns <= last_refill_ns_) return;
  const std::uint64_t delta_ns = now_ns - last_refill_ns_;
  last_refill_ns_ = now_ns;
  if (available_ >= burst_) {
    // Full bucket: elapsed time earns nothing, and the carry resets so a
    // saturated idle period cannot bank fractional credit.
    carry_byte_ns_ = 0;
    return;
  }
  // tokens = (carry + delta * rate) / 1e9, remainder carried. The 128-bit
  // product keeps the math exact for any realistic rate x interval.
  const unsigned __int128 earned_byte_ns =
      static_cast<unsigned __int128>(delta_ns) * rate_ + carry_byte_ns_;
  const std::uint64_t tokens =
      static_cast<std::uint64_t>(earned_byte_ns / kNsPerSec);
  carry_byte_ns_ = static_cast<std::uint64_t>(earned_byte_ns % kNsPerSec);
  if (tokens >= burst_ - available_) {
    available_ = burst_;
    carry_byte_ns_ = 0;
  } else {
    available_ += tokens;
  }
}

bool TokenBucket::TryCharge(std::uint64_t bytes) {
  if (rate_ == 0) return true;
  if (bytes > available_) return false;
  available_ -= bytes;
  return true;
}

std::uint64_t TokenBucket::RetryAfterNs(std::uint64_t bytes) const {
  if (rate_ == 0) return 0;
  const std::uint64_t target = std::min(bytes, burst_);
  if (target <= available_) return 0;
  const std::uint64_t deficit = target - available_;
  // ceil(deficit * 1e9 / rate) minus nothing for the carry: ignoring the
  // banked carry only ever rounds the hint up, so "advance by the hint"
  // always crosses the admit boundary.
  const unsigned __int128 need_byte_ns =
      static_cast<unsigned __int128>(deficit) * kNsPerSec;
  return static_cast<std::uint64_t>((need_byte_ns + rate_ - 1) / rate_);
}

}  // namespace primacy::service
