#include "service/batch_queue.h"

#include <utility>

#include "util/error.h"

namespace primacy::service {

BatchQueue::BatchQueue(BatchOptions options, ServiceClock* clock,
                       Dispatcher dispatcher)
    : options_(options), clock_(clock), dispatcher_(std::move(dispatcher)) {
  PRIMACY_CHECK(clock_ != nullptr);
  if (!dispatcher_) {
    throw InvalidArgumentError("BatchQueue: null dispatcher");
  }
  clock_->RegisterWaiter(&mu_, &cv_);
  // Dedicated timer thread, not a pool task: it parks for the queue's whole
  // lifetime, which would wedge a pool worker (allowlisted by the
  // pool-containment lint rule). It runs no request work — batches execute
  // in the dispatcher's pool tasks, which keep the pool's exception
  // containment.
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BatchQueue::~BatchQueue() {
  Stop();
  clock_->UnregisterWaiter(&cv_);
}

void BatchQueue::Push(std::size_t bytes,
                      std::function<void(CodecContext&)> work) {
  if (!work) {
    throw InvalidArgumentError("BatchQueue: null work item");
  }
  std::unique_lock<std::mutex> lock(mu_);
  pending_.push_back(Item{next_sequence_++, bytes, clock_->NowNs(),
                          std::move(work)});
  pending_bytes_ += bytes;
  if (stopping_) {
    // Late push racing Stop: never strand an accepted item — it flushes
    // right now as a drain batch instead of waiting for a flusher that is
    // already gone.
    CutAndDispatch(lock, FlushTrigger::kDrain);
    return;
  }
  if (options_.flush_timeout_ns == 0) {
    CutAndDispatch(lock, FlushTrigger::kTimeout);
    return;
  }
  if (options_.flush_bytes != 0 && pending_bytes_ >= options_.flush_bytes) {
    CutAndDispatch(lock, FlushTrigger::kSize);
    return;
  }
  if (options_.flush_requests != 0 &&
      pending_.size() >= options_.flush_requests) {
    CutAndDispatch(lock, FlushTrigger::kCount);
    return;
  }
  if (pending_.size() == 1) {
    // First item of a fresh batch: wake the flusher so it arms this batch's
    // timeout deadline.
    cv_.notify_all();
  }
}

void BatchQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!pending_.empty()) {
    CutAndDispatch(lock, FlushTrigger::kDrain);
  }
}

void BatchQueue::Stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      if (!pending_.empty()) {
        CutAndDispatch(lock, FlushTrigger::kDrain);
      }
    }
    cv_.notify_all();
  }
  if (flusher_.joinable()) {
    flusher_.join();
  }
}

BatchQueue::Stats BatchQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t BatchQueue::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void BatchQueue::CutAndDispatch(std::unique_lock<std::mutex>& lock,
                                FlushTrigger trigger) {
  Batch batch;
  batch.trigger = trigger;
  batch.bytes = pending_bytes_;
  batch.cut_ns = clock_->NowNs();
  batch.items = std::move(pending_);
  pending_.clear();
  pending_bytes_ = 0;
  switch (trigger) {
    case FlushTrigger::kSize: ++stats_.size_flushes; break;
    case FlushTrigger::kCount: ++stats_.count_flushes; break;
    case FlushTrigger::kTimeout: ++stats_.timeout_flushes; break;
    case FlushTrigger::kDrain: ++stats_.drain_flushes; break;
  }
  ++stats_.batches;
  stats_.items += batch.items.size();
  lock.unlock();
  dispatcher_(std::move(batch));
  lock.lock();
}

void BatchQueue::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;
    if (pending_.empty() || options_.flush_timeout_ns == 0) {
      // Nothing to time out (push self-flushes when the timeout is zero);
      // park until a push or Stop wakes us.
      clock_->WaitUntil(lock, cv_, kNoDeadlineNs);
      continue;
    }
    const std::uint64_t deadline =
        pending_.front().enqueue_ns + options_.flush_timeout_ns;
    if (clock_->NowNs() >= deadline) {
      CutAndDispatch(lock, FlushTrigger::kTimeout);
      continue;
    }
    clock_->WaitUntil(lock, cv_, deadline);
  }
}

}  // namespace primacy::service
