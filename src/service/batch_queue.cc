#include "service/batch_queue.h"

#include <utility>

#include "util/error.h"

namespace primacy::service {

BatchQueue::BatchQueue(BatchOptions options, ServiceClock* clock,
                       Dispatcher dispatcher)
    : options_(options), clock_(clock), dispatcher_(std::move(dispatcher)) {
  PRIMACY_CHECK(clock_ != nullptr);
  if (!dispatcher_) {
    throw InvalidArgumentError("BatchQueue: null dispatcher");
  }
  clock_->RegisterWaiter(&mu_, &cv_);
  // Dedicated timer thread, not a pool task: it parks for the queue's whole
  // lifetime, which would wedge a pool worker (allowlisted by the
  // pool-containment lint rule). It runs no request work — batches execute
  // in the dispatcher's pool tasks, which keep the pool's exception
  // containment.
  flusher_ = std::thread([this] { FlusherLoop(); });
}

BatchQueue::~BatchQueue() {
  Stop();
  clock_->UnregisterWaiter(&cv_);
}

void BatchQueue::Push(std::size_t bytes,
                      std::function<void(CodecContext&)> work) {
  if (!work) {
    throw InvalidArgumentError("BatchQueue: null work item");
  }
  primacy::MutexLock lock(mu_);
  pending_.push_back(Item{next_sequence_++, bytes, clock_->NowNs(),
                          std::move(work)});
  pending_bytes_ += bytes;
  if (stopping_) {
    // Late push racing Stop: never strand an accepted item — it flushes
    // right now as a drain batch instead of waiting for a flusher that is
    // already gone.
    CutAndDispatch(FlushTrigger::kDrain);
    return;
  }
  if (options_.flush_timeout_ns == 0) {
    CutAndDispatch(FlushTrigger::kTimeout);
    return;
  }
  if (options_.flush_bytes != 0 && pending_bytes_ >= options_.flush_bytes) {
    CutAndDispatch(FlushTrigger::kSize);
    return;
  }
  if (options_.flush_requests != 0 &&
      pending_.size() >= options_.flush_requests) {
    CutAndDispatch(FlushTrigger::kCount);
    return;
  }
  if (pending_.size() == 1) {
    // First item of a fresh batch: wake the flusher so it arms this batch's
    // timeout deadline.
    cv_.NotifyAll();
  }
}

void BatchQueue::Drain() {
  primacy::MutexLock lock(mu_);
  if (!pending_.empty()) {
    CutAndDispatch(FlushTrigger::kDrain);
  }
}

void BatchQueue::Stop() {
  {
    primacy::MutexLock lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      if (!pending_.empty()) {
        CutAndDispatch(FlushTrigger::kDrain);
      }
    }
    cv_.NotifyAll();
  }
  if (flusher_.joinable()) {
    flusher_.join();
  }
}

BatchQueue::Stats BatchQueue::stats() const {
  primacy::MutexLock lock(mu_);
  return stats_;
}

std::size_t BatchQueue::Depth() const {
  primacy::MutexLock lock(mu_);
  return pending_.size();
}

void BatchQueue::CutAndDispatch(FlushTrigger trigger) {
  Batch batch;
  batch.trigger = trigger;
  batch.bytes = pending_bytes_;
  batch.cut_ns = clock_->NowNs();
  batch.items = std::move(pending_);
  pending_.clear();
  pending_bytes_ = 0;
  switch (trigger) {
    case FlushTrigger::kSize: ++stats_.size_flushes; break;
    case FlushTrigger::kCount: ++stats_.count_flushes; break;
    case FlushTrigger::kTimeout: ++stats_.timeout_flushes; break;
    case FlushTrigger::kDrain: ++stats_.drain_flushes; break;
  }
  ++stats_.batches;
  stats_.items += batch.items.size();
  // The dispatcher runs outside the queue lock (it may block on the pool);
  // mu_ is re-held before returning, as the REQUIRES contract demands.
  mu_.Unlock();
  dispatcher_(std::move(batch));
  mu_.Lock();
}

void BatchQueue::FlusherLoop() {
  primacy::MutexLock lock(mu_);
  for (;;) {
    if (stopping_) return;
    if (pending_.empty() || options_.flush_timeout_ns == 0) {
      // Nothing to time out (push self-flushes when the timeout is zero);
      // park until a push or Stop wakes us.
      clock_->WaitUntil(mu_, cv_, kNoDeadlineNs);
      continue;
    }
    const std::uint64_t deadline =
        pending_.front().enqueue_ns + options_.flush_timeout_ns;
    if (clock_->NowNs() >= deadline) {
      CutAndDispatch(FlushTrigger::kTimeout);
      continue;
    }
    clock_->WaitUntil(mu_, cv_, deadline);
  }
}

}  // namespace primacy::service
