// Admission queue with flush-size / flush-timeout batching (the capuchinos
// pattern): small compress/decompress requests coalesce into chunk-sized
// batches before touching the thread pool, so per-request dispatch overhead
// (a pool task, a future, codec worker-state construction) is paid once per
// batch instead of once per request.
//
// Flush triggers, checked in this order:
//   * size   — pending payload bytes reached flush_bytes (cut on Push);
//   * count  — pending requests reached flush_requests (cut on Push);
//   * timeout — the oldest pending item aged past flush_timeout_ns (cut by
//     the flusher thread, whose timed wait goes through the ServiceClock so
//     virtual-clock tests fire timeouts deterministically);
//   * drain  — an explicit Drain()/Stop() flushed whatever was pending.
// A batch is cut and handed to the dispatcher exactly once; the size/count
// cut happens on the pushing thread (no flusher round-trip latency) with
// the dispatcher invoked outside the queue lock.
//
// The queue is request-type agnostic: items carry a byte size (for the
// size trigger and fill-ratio accounting) and a closure run later by the
// service's batch executor with a checked-out CodecContext. Only
// src/service may touch this header (service-containment lint rule);
// everything else goes through CompressionService.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "service/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace primacy::service {

struct CodecContext;  // per-worker codec state (service.cc)

struct BatchOptions {
  /// Cut a batch when pending payload bytes reach this (0 = no size cut).
  /// The default tracks the codec's sweet spot: one PRIMACY chunk of work.
  std::size_t flush_bytes = 256 * 1024;
  /// Cut a batch when this many requests are pending (0 = no count cut).
  std::size_t flush_requests = 64;
  /// Cut whatever is pending once the oldest request is this old
  /// (0 = flush immediately on every push; the unbatched degenerate mode).
  std::uint64_t flush_timeout_ns = 2'000'000;  // 2 ms
};

enum class FlushTrigger : std::uint8_t { kSize, kCount, kTimeout, kDrain };

class BatchQueue {
 public:
  struct Item {
    std::uint64_t sequence = 0;    // admission order, assigned by Push
    std::size_t bytes = 0;         // request payload size
    std::uint64_t enqueue_ns = 0;  // service-clock time of admission
    std::function<void(CodecContext&)> work;
  };

  struct Batch {
    FlushTrigger trigger = FlushTrigger::kDrain;
    std::size_t bytes = 0;  // sum of item payload bytes
    std::uint64_t cut_ns = 0;
    std::vector<Item> items;
  };

  /// Receives each cut batch, outside the queue lock, on the cutting thread
  /// (pusher for size/count, flusher for timeout, caller for drain). Must
  /// not call back into Push/Drain/Stop.
  using Dispatcher = std::function<void(Batch&&)>;

  /// Exact flush accounting (queue mutex), for tests and stats snapshots.
  struct Stats {
    std::uint64_t size_flushes = 0;
    std::uint64_t count_flushes = 0;
    std::uint64_t timeout_flushes = 0;
    std::uint64_t drain_flushes = 0;
    std::uint64_t batches = 0;
    std::uint64_t items = 0;

    std::uint64_t Flushes() const {
      return size_flushes + count_flushes + timeout_flushes + drain_flushes;
    }
  };

  /// `clock` must outlive the queue. The flusher thread starts immediately;
  /// with flush_timeout_ns == 0 it stays parked (every push self-flushes).
  BatchQueue(BatchOptions options, ServiceClock* clock, Dispatcher dispatcher);

  /// Stops and drains: equivalent to Stop().
  ~BatchQueue();

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Appends one item (FIFO). If the push crosses the size or count
  /// threshold, the batch is cut and dispatched before Push returns. After
  /// Stop, late pushes still dispatch — immediately, as single-item drain
  /// batches — so no accepted item is ever dropped.
  void Push(std::size_t bytes, std::function<void(CodecContext&)> work);

  /// Cuts and dispatches whatever is pending (trigger kDrain). No-op when
  /// empty.
  void Drain();

  /// Drains pending items and joins the flusher thread. Idempotent.
  void Stop();

  Stats stats() const;

  /// Pending items right now (tests; the queue mutex is taken).
  std::size_t Depth() const;

 private:
  /// Cuts the whole pending list into a Batch under mu_, releases the
  /// lock to dispatch, and reacquires it before returning (legal under the
  /// REQUIRES contract: the capability is held again at exit).
  void CutAndDispatch(FlushTrigger trigger) PRIMACY_REQUIRES(mu_);

  void FlusherLoop() PRIMACY_EXCLUDES(mu_);

  const BatchOptions options_;
  ServiceClock* const clock_;
  const Dispatcher dispatcher_;

  mutable primacy::Mutex mu_;
  // Paired with mu_: wakes the flusher (new first item, Stop) and is
  // clock-registered so VirtualClock::Advance can fire timeouts.
  primacy::CondVar cv_;
  std::vector<Item> pending_ PRIMACY_GUARDED_BY(mu_);
  std::size_t pending_bytes_ PRIMACY_GUARDED_BY(mu_) = 0;
  std::uint64_t next_sequence_ PRIMACY_GUARDED_BY(mu_) = 0;
  Stats stats_ PRIMACY_GUARDED_BY(mu_);
  bool stopping_ PRIMACY_GUARDED_BY(mu_) = false;
  std::thread flusher_;
};

}  // namespace primacy::service
