#include "service/service.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <optional>
#include <utility>

#include "cache/block_cache.h"
#include "core/builtin_codecs.h"
#include "core/chunk_pipeline.h"
#include "core/stream_format.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace primacy::service {

namespace {

/// Retry hint for in-flight rejections: there is no refill schedule to
/// compute from (capacity frees when some request completes), so the hint
/// is one batch timeout — the horizon at which queued work must have been
/// dispatched.
std::uint64_t InflightRetryHintNs(const BatchOptions& batch) {
  return batch.flush_timeout_ns != 0 ? batch.flush_timeout_ns : 1'000'000;
}

bool ValidTenantName(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-')) {
      return false;
    }
  }
  return true;
}

constexpr std::array<double, 8> kFillRatioBounds = {
    0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0};
constexpr std::array<double, 7> kLatencySecondsBounds = {
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0};

const char* ResultLabel(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kRejectedQuota: return "rejected_quota";
    case ServiceStatus::kRejectedInflight: return "rejected_inflight";
    case ServiceStatus::kCancelled: return "cancelled";
    case ServiceStatus::kError: return "error";
    case ServiceStatus::kShuttingDown: return "shutdown";
  }
  return "unknown";
}

/// `reason` label on primacy_service_rejections_total, or null for
/// statuses that are not admission refusals. The label set is closed —
/// quota, inflight, draining — and pinned by the service test suite.
const char* RejectReason(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kRejectedQuota: return "quota";
    case ServiceStatus::kRejectedInflight: return "inflight";
    case ServiceStatus::kShuttingDown: return "draining";
    default: return nullptr;
  }
}

void AppendJsonField(std::string& out, const char* key, std::uint64_t value,
                     bool* first) {
  if (!*first) out += ", ";
  *first = false;
  out += '"';
  out += key;
  out += "\": ";
  out += std::to_string(value);
}

}  // namespace

namespace internal {

/// Per-tenant telemetry handles, resolved once at AddTenant (stubs when the
/// build compiles telemetry out).
struct TenantMetrics {
  telemetry::Counter* admitted_bytes = nullptr;
  telemetry::Counter* rejected_bytes = nullptr;
  telemetry::Counter* memo_hits = nullptr;
  telemetry::Gauge* inflight = nullptr;
};

/// One compress-result memo entry. The full input is retained as the real
/// key: a hit requires byte equality, so a 64-bit hash collision degrades
/// to a miss instead of serving another payload's stream.
struct MemoEntry {
  Bytes input;
  Bytes stream;
  std::uint64_t last_used = 0;
};

struct Tenant {
  Tenant(TenantConfig cfg, std::uint64_t tenant_id, std::uint64_t now_ns)
      : config(std::move(cfg)),
        id(tenant_id),
        bucket(config.quota_bytes_per_sec, config.quota_burst_bytes, now_ns) {}

  const TenantConfig config;
  const std::uint64_t id;
  // bucket, inflight, cancel_epoch, and stats are guarded by the OWNING
  // SERVICE's mu_, not a tenant-local lock — admission decisions read
  // several tenants' state under one critical section. The analysis cannot
  // express a guard living in another object (GUARDED_BY needs a member or
  // global expression), so the contract is documented here and every access
  // in service.cc sits inside a CompressionService mu_ section.
  TokenBucket bucket;
  std::size_t inflight = 0;
  /// Bumped by DrainTenant; a request whose admission epoch is older
  /// resolves kCancelled instead of executing.
  std::uint64_t cancel_epoch = 0;
  TenantStatsSnapshot stats;
  /// This tenant's private decoded-block cache partition (null when the
  /// tenant has no cache share).
  std::shared_ptr<DecodedBlockCache> cache;
  TenantMetrics metrics;

  /// Compress-result memo (TenantConfig::memo_bytes). Guarded by its own
  /// mutex because batch workers consult it while holding no service locks;
  /// eviction is an O(n) oldest-scan, fine at hot-working-set sizes.
  /// Lock order: the service's mu_ may be held when taking memo_mu
  /// (TenantStats), never the reverse.
  primacy::Mutex memo_mu;
  std::unordered_map<std::uint64_t, MemoEntry> memo
      PRIMACY_GUARDED_BY(memo_mu);
  std::uint64_t memo_tick PRIMACY_GUARDED_BY(memo_mu) = 0;
  std::size_t memo_bytes_used PRIMACY_GUARDED_BY(memo_mu) = 0;
  std::uint64_t memo_hits PRIMACY_GUARDED_BY(memo_mu) = 0;

  bool MemoLookup(ByteSpan payload, Bytes& stream_out)
      PRIMACY_EXCLUDES(memo_mu) {
    if (config.memo_bytes == 0) return false;
    const std::uint64_t key = Xxh64(payload);
    primacy::MutexLock lock(memo_mu);
    const auto it = memo.find(key);
    if (it == memo.end() || it->second.input.size() != payload.size() ||
        !std::equal(payload.begin(), payload.end(),
                    it->second.input.begin())) {
      return false;
    }
    it->second.last_used = ++memo_tick;
    ++memo_hits;
    metrics.memo_hits->Increment();
    stream_out = it->second.stream;
    return true;
  }

  void MemoInsert(ByteSpan payload, const Bytes& stream)
      PRIMACY_EXCLUDES(memo_mu) {
    if (config.memo_bytes == 0) return;
    const std::size_t charge = payload.size() + stream.size() + 64;
    if (charge > config.memo_bytes) return;  // would never fit
    const std::uint64_t key = Xxh64(payload);
    primacy::MutexLock lock(memo_mu);
    const auto it = memo.find(key);
    if (it != memo.end()) {
      // Same hash: refresh (same payload) or replace (collision) in place.
      memo_bytes_used -= it->second.input.size() + it->second.stream.size() + 64;
      memo.erase(it);
    }
    while (memo_bytes_used + charge > config.memo_bytes && !memo.empty()) {
      auto oldest = memo.begin();
      for (auto cur = memo.begin(); cur != memo.end(); ++cur) {
        if (cur->second.last_used < oldest->second.last_used) oldest = cur;
      }
      memo_bytes_used -=
          oldest->second.input.size() + oldest->second.stream.size() + 64;
      memo.erase(oldest);
    }
    MemoEntry entry;
    entry.input = ToBytes(payload);
    entry.stream = stream;
    entry.last_used = ++memo_tick;
    memo.emplace(key, std::move(entry));
    memo_bytes_used += charge;
  }
};

}  // namespace internal

/// Reusable per-slot codec state: one solver + encoder + compressor, plus
/// per-tenant decompressors (tenant cache partitions differ). Checked out
/// of the service's freelist for the duration of one batch slot and
/// returned after, so the 256 KiB frequency scratch, the solver's tables,
/// and the decompressors' hoisted state persist across batches instead of
/// being rebuilt per request — the amortization the batching exists for.
struct CodecContext {
  explicit CodecContext(const PrimacyOptions& codec_options)
      : solver(primacy::internal::ResolveSolver(codec_options.solver)),
        encoder(codec_options, *solver),
        compressor(codec_options) {}

  std::shared_ptr<const Codec> solver;
  ChunkEncoder encoder;
  PrimacyCompressor compressor;
  std::unordered_map<std::uint64_t, std::unique_ptr<PrimacyDecompressor>>
      decompressors;

  PrimacyDecompressor& DecompressorFor(const internal::Tenant& tenant,
                                       const PrimacyOptions& codec_options) {
    std::unique_ptr<PrimacyDecompressor>& slot = decompressors[tenant.id];
    if (slot == nullptr) {
      PrimacyOptions options = codec_options;
      options.block_cache = tenant.cache;
      options.cache = CacheOptions{};  // partition decided above, or none
      slot = std::make_unique<PrimacyDecompressor>(std::move(options));
    }
    return *slot;
  }
};

// --- UploadSession ---------------------------------------------------------

void UploadSession::Append(ByteSpan data) {
  if (finished_) {
    throw InvalidArgumentError("UploadSession: Append after Finish");
  }
  primacy::AppendBytes(buffer_, data);
}

std::future<ServiceResponse> UploadSession::Finish() {
  if (finished_) {
    throw InvalidArgumentError("UploadSession: double Finish");
  }
  finished_ = true;
  return service_->SubmitCompress(tenant_, std::move(buffer_));
}

// --- CompressionService ----------------------------------------------------

CompressionService::CompressionService(ServiceOptions options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : &SystemServiceClock::Instance()) {
  // Requests are small by design (batching is the parallelism axis); the
  // serial per-request path is also the one the reusable encoder contexts
  // accelerate, and it keeps responses byte-identical to serial library
  // calls trivially.
  options_.codec.threads = 1;
  RegisterBuiltinCodecs();
  clock_->RegisterWaiter(&mu_, &cv_);
  queue_ = std::make_unique<BatchQueue>(
      options_.batch, clock_,
      [this](BatchQueue::Batch&& batch) { DispatchBatch(std::move(batch)); });
}

CompressionService::~CompressionService() {
  {
    primacy::MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();  // blocked submitters resolve kShuttingDown
  queue_->Stop();   // flush pending items; late pushes self-dispatch
  {
    primacy::MutexLock lock(mu_);
    while (outstanding_batches_ != 0 || active_submitters_ != 0) {
      cv_.Wait(mu_);
    }
  }
  clock_->UnregisterWaiter(&cv_);
}

void CompressionService::AddTenant(const TenantConfig& config) {
  if (!ValidTenantName(config.name)) {
    throw InvalidArgumentError(
        "CompressionService: tenant name must match [A-Za-z0-9_.-]+ (it is "
        "rendered into telemetry labels): '" +
        config.name + "'");
  }
  if (config.cache_share < 0.0 || config.cache_share > 1.0) {
    throw InvalidArgumentError(
        "CompressionService: cache_share must be in [0, 1]");
  }
  primacy::MutexLock lock(mu_);
  if (tenants_.contains(config.name)) {
    throw InvalidArgumentError("CompressionService: duplicate tenant '" +
                               config.name + "'");
  }
  double total_share = config.cache_share;
  for (const auto& [name, tenant] : tenants_) {
    total_share += tenant->config.cache_share;
  }
  if (total_share > 1.0 + 1e-9) {
    throw InvalidArgumentError(
        "CompressionService: tenant cache shares exceed the cache budget "
        "(sum > 1)");
  }
  auto tenant = std::make_unique<internal::Tenant>(
      config, tenants_.size(), clock_->NowNs());
  const std::size_t partition_bytes = static_cast<std::size_t>(
      config.cache_share * static_cast<double>(options_.cache_capacity_bytes));
  if (partition_bytes > 0) {
    CacheOptions cache_options;
    cache_options.enabled = true;
    cache_options.capacity_bytes = partition_bytes;
    cache_options.shard_count = options_.cache_shards;
    tenant->cache = MakeBlockCache(cache_options);
  }
  auto& registry = telemetry::MetricsRegistry::Global();
  const std::string label = "tenant=\"" + config.name + "\"";
  tenant->metrics.admitted_bytes =
      &registry.GetCounter("primacy_service_admitted_bytes_total", label);
  tenant->metrics.rejected_bytes =
      &registry.GetCounter("primacy_service_rejected_bytes_total", label);
  tenant->metrics.memo_hits =
      &registry.GetCounter("primacy_service_memo_hits_total", label);
  tenant->metrics.inflight =
      &registry.GetGauge("primacy_service_inflight", label);
  tenants_.emplace(config.name, std::move(tenant));
}

std::future<ServiceResponse> CompressionService::SubmitCompress(
    std::string_view tenant, Bytes payload) {
  return Submit(RequestType::kCompress, tenant, std::move(payload));
}

std::future<ServiceResponse> CompressionService::SubmitDecompress(
    std::string_view tenant, Bytes stream) {
  return Submit(RequestType::kDecompress, tenant, std::move(stream));
}

std::future<ServiceResponse> CompressionService::SubmitDecompressRange(
    std::string_view tenant, Bytes stream, std::uint64_t first_element,
    std::uint64_t element_count) {
  return Submit(RequestType::kDecompressRange, tenant, std::move(stream),
                first_element, element_count);
}

UploadSession CompressionService::BeginUpload(std::string_view tenant,
                                              UploadSink sink) {
  FindTenant(tenant);  // unknown tenants fail at session open, not Finish
  if (sink == UploadSink::kNonSeekableStream) {
    throw InvalidArgumentError(
        "CompressionService: streamed upload to a non-seekable sink is not "
        "supported: the streaming writer still emits format v1 only (no "
        "v2/v3 chunk directory, footer, or checksums — ROADMAP 'streaming "
        "writer parity'), which would silently lose random access and "
        "integrity verification; buffer to a seekable target instead");
  }
  return UploadSession(this, std::string(tenant));
}

std::size_t CompressionService::DrainTenant(std::string_view tenant_name) {
  internal::Tenant& tenant = FindTenant(tenant_name);
  std::size_t inflight = 0;
  {
    primacy::MutexLock lock(mu_);
    ++tenant.cancel_epoch;
    inflight = tenant.inflight;
  }
  // Flush so the cancellations resolve promptly instead of waiting for the
  // batch timeout.
  queue_->Drain();
  return inflight;
}

void CompressionService::Flush() { queue_->Drain(); }

ServiceStatsSnapshot CompressionService::Stats() const {
  ServiceStatsSnapshot snapshot;
  {
    primacy::MutexLock lock(mu_);
    snapshot = stats_;
  }
  snapshot.batch = queue_->stats();
  return snapshot;
}

TenantStatsSnapshot CompressionService::TenantStats(
    std::string_view tenant_name) const {
  internal::Tenant& tenant = FindTenant(tenant_name);
  primacy::MutexLock lock(mu_);
  // Refresh the bucket so the snapshot reflects time that has passed since
  // the last admission attempt (logical constness: accounting only).
  tenant.bucket.Refill(clock_->NowNs());
  TenantStatsSnapshot snapshot = tenant.stats;
  snapshot.inflight = tenant.inflight;
  snapshot.quota_available_bytes =
      tenant.bucket.unlimited() ? ~std::uint64_t{0} : tenant.bucket.available();
  if (tenant.cache != nullptr) {
    const CacheStatsSnapshot cache = tenant.cache->Stats();
    snapshot.cache_hits = cache.hits;
    snapshot.cache_misses = cache.misses;
  }
  {
    primacy::MutexLock memo_lock(tenant.memo_mu);
    snapshot.memo_hits = tenant.memo_hits;
    snapshot.memo_bytes_used = tenant.memo_bytes_used;
  }
  return snapshot;
}

std::vector<SlowRequestEvent> CompressionService::SlowRequests() const {
  primacy::MutexLock lock(mu_);
  return {slow_requests_.begin(), slow_requests_.end()};
}

std::string CompressionService::StatusJson() const {
  std::vector<std::string> names;
  std::vector<SlowRequestEvent> slow;
  {
    primacy::MutexLock lock(mu_);
    names.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) names.push_back(name);
    slow.assign(slow_requests_.begin(), slow_requests_.end());
  }
  std::sort(names.begin(), names.end());

  std::string out = "{\"tenants\": {";
  bool first_tenant = true;
  for (const std::string& name : names) {
    // Tenant snapshots are taken one at a time (TenantStats re-locks): the
    // document is per-tenant consistent, which is all a status page needs.
    const TenantStatsSnapshot stats = TenantStats(name);
    if (!first_tenant) out += ", ";
    first_tenant = false;
    out += '"';
    out += name;  // validated [A-Za-z0-9_.-]+, no JSON escaping needed
    out += "\": {";
    bool first = true;
    AppendJsonField(out, "admitted_requests", stats.admitted_requests, &first);
    AppendJsonField(out, "admitted_bytes", stats.admitted_bytes, &first);
    AppendJsonField(out, "rejected_quota", stats.rejected_quota, &first);
    AppendJsonField(out, "rejected_inflight", stats.rejected_inflight, &first);
    AppendJsonField(out, "completed", stats.completed, &first);
    AppendJsonField(out, "cancelled", stats.cancelled, &first);
    AppendJsonField(out, "failed", stats.failed, &first);
    AppendJsonField(out, "inflight", stats.inflight, &first);
    if (stats.quota_available_bytes != ~std::uint64_t{0}) {
      AppendJsonField(out, "quota_available_bytes",
                      stats.quota_available_bytes, &first);
    }
    AppendJsonField(out, "cache_hits", stats.cache_hits, &first);
    AppendJsonField(out, "cache_misses", stats.cache_misses, &first);
    AppendJsonField(out, "memo_hits", stats.memo_hits, &first);
    AppendJsonField(out, "memo_bytes_used", stats.memo_bytes_used, &first);
    out += '}';
  }
  out += "}, ";
  out += "\"queue_depth\": ";
  out += std::to_string(queue_->Depth());
  out += ", \"slow_requests\": [";
  bool first_event = true;
  for (const SlowRequestEvent& event : slow) {
    if (!first_event) out += ", ";
    first_event = false;
    out += "{\"tenant\": \"";
    out += event.tenant;
    out += "\", \"type\": \"";
    out += event.type;
    out += "\", \"result\": \"";
    out += ResultLabel(event.status);
    out += "\", ";
    bool first = true;
    AppendJsonField(out, "bytes", event.bytes, &first);
    AppendJsonField(out, "admit_ns", event.admit_ns, &first);
    AppendJsonField(out, "latency_ns", event.latency_ns, &first);
    AppendJsonField(out, "slo_ns", event.slo_ns, &first);
    AppendJsonField(out, "queue_depth", event.queue_depth, &first);
    AppendJsonField(out, "tenant_inflight", event.tenant_inflight, &first);
    out += '}';
  }
  out += "]}";
  return out;
}

internal::Tenant& CompressionService::FindTenant(
    std::string_view name) const {
  primacy::MutexLock lock(mu_);
  const auto it = tenants_.find(std::string(name));
  if (it == tenants_.end()) {
    throw InvalidArgumentError("CompressionService: unknown tenant '" +
                               std::string(name) + "'");
  }
  return *it->second;
}

std::future<ServiceResponse> CompressionService::Submit(
    RequestType type, std::string_view tenant_name, Bytes payload,
    std::uint64_t first_element, std::uint64_t element_count) {
  internal::Tenant& tenant = FindTenant(tenant_name);
  auto promise = std::make_shared<std::promise<ServiceResponse>>();
  std::future<ServiceResponse> future = promise->get_future();
  const std::size_t bytes = payload.size();
  auto& registry = telemetry::MetricsRegistry::Global();
  const auto resolve_now = [&](ServiceStatus status,
                               std::uint64_t retry_after_ns) {
    registry
        .GetCounter("primacy_service_requests_total",
                    "tenant=\"" + tenant.config.name + "\",result=\"" +
                        ResultLabel(status) + "\"")
        .Increment();
    if (const char* reason = RejectReason(status)) {
      registry
          .GetCounter("primacy_service_rejections_total",
                      "tenant=\"" + tenant.config.name + "\",reason=\"" +
                          reason + "\"")
          .Increment();
    }
    ServiceResponse response;
    response.status = status;
    response.retry_after_ns = retry_after_ns;
    promise->set_value(std::move(response));
    return std::move(future);
  };

  // The destructor must not tear the service down under a submitter that is
  // blocked (or mid-resolve) inside this function: it drains this count
  // after waking everyone, so every early-return path below finishes with
  // the service's members still alive.
  {
    primacy::MutexLock lock(mu_);
    ++active_submitters_;
  }
  struct SubmitterGuard {
    CompressionService* service;
    ~SubmitterGuard() {
      // Notify under the lock: the destructor waiting in cv_.Wait cannot
      // observe the decremented count and tear cv_ down until we release
      // mu_, which happens after the notify.
      primacy::MutexLock lock(service->mu_);
      --service->active_submitters_;
      service->cv_.NotifyAll();
    }
  } submitter_guard{this};

  std::uint64_t admit_epoch = 0;
  std::uint64_t admit_ns = 0;
  // Manual Lock/Unlock (not a scoped MutexLock): the loop has three
  // distinct exits — reject paths that must resolve the promise outside
  // the lock, blocking waits that release it inside WaitUntil, and the
  // admission fallthrough — and the analysis tracks the capability through
  // each branch. Nothing in the locked region throws (bucket arithmetic,
  // integer stats, atomic counters).
  mu_.Lock();
  for (;;) {
    if (stopping_) {
      mu_.Unlock();
      return resolve_now(ServiceStatus::kShuttingDown, 0);
    }
    tenant.bucket.Refill(clock_->NowNs());
    if (tenant.config.max_inflight != 0 &&
        tenant.inflight >= tenant.config.max_inflight) {
      if (tenant.config.on_pressure == BackpressurePolicy::kReject) {
        ++tenant.stats.rejected_inflight;
        tenant.stats.rejected_bytes += bytes;
        ++stats_.rejected_inflight;
        stats_.rejected_bytes += bytes;
        tenant.metrics.rejected_bytes->Increment(bytes);
        mu_.Unlock();
        return resolve_now(ServiceStatus::kRejectedInflight,
                           InflightRetryHintNs(options_.batch));
      }
      // kBlock: capacity frees on a completion, which notifies cv_.
      clock_->WaitUntil(mu_, cv_, kNoDeadlineNs);
      continue;
    }
    if (!tenant.bucket.TryCharge(bytes)) {
      const std::uint64_t retry = tenant.bucket.RetryAfterNs(bytes);
      const bool oversized =
          !tenant.bucket.unlimited() && bytes > tenant.bucket.burst();
      if (tenant.config.on_pressure == BackpressurePolicy::kReject ||
          oversized) {
        // Oversized requests (payload > burst) can never be admitted, so
        // they reject under both policies rather than blocking forever.
        ++tenant.stats.rejected_quota;
        tenant.stats.rejected_bytes += bytes;
        ++stats_.rejected_quota;
        stats_.rejected_bytes += bytes;
        tenant.metrics.rejected_bytes->Increment(bytes);
        mu_.Unlock();
        return resolve_now(ServiceStatus::kRejectedQuota, retry);
      }
      clock_->WaitUntil(mu_, cv_, clock_->NowNs() + retry);
      continue;
    }
    break;
  }
  admit_epoch = tenant.cancel_epoch;
  admit_ns = clock_->NowNs();
  ++tenant.inflight;
  ++tenant.stats.admitted_requests;
  tenant.stats.admitted_bytes += bytes;
  ++stats_.admitted_requests;
  stats_.admitted_bytes += bytes;
  mu_.Unlock();
  tenant.metrics.admitted_bytes->Increment(bytes);
  tenant.metrics.inflight->Add(1);
  registry.GetGauge("primacy_service_queue_depth").Add(1);
  registry.GetGauge("primacy_service_queue_bytes")
      .Add(static_cast<std::int64_t>(bytes));

  queue_->Push(bytes, [this, &tenant, admit_epoch, admit_ns, type,
                       first_element, element_count,
                       payload = std::move(payload),
                       promise](CodecContext& context) mutable {
    ServiceResponse response;
    bool cancelled = false;
    {
      primacy::MutexLock lock(mu_);
      cancelled = tenant.cancel_epoch != admit_epoch;
    }
    if (cancelled) {
      response.status = ServiceStatus::kCancelled;
    } else {
      try {
        if (type == RequestType::kCompress) {
          if (!tenant.MemoLookup(payload, response.payload)) {
            response.payload =
                context.compressor.CompressBytesWith(context.encoder, payload);
            tenant.MemoInsert(payload, response.payload);
          }
        } else if (type == RequestType::kDecompressRange) {
          response.payload =
              context.DecompressorFor(tenant, options_.codec)
                  .DecompressBytesRange(payload, first_element, element_count);
        } else {
          response.payload =
              context.DecompressorFor(tenant, options_.codec)
                  .DecompressBytes(payload);
        }
        response.status = ServiceStatus::kOk;
      } catch (const std::exception& e) {
        response.status = ServiceStatus::kError;
        response.error = e.what();
      }
    }
    const std::uint64_t latency_ns = clock_->NowNs() - admit_ns;
    const bool slow = options_.slow_request_slo_ns != 0 &&
                      latency_ns > options_.slow_request_slo_ns;
    // Queue depth is read before mu_: BatchQueue has its own lock and is
    // never acquired while holding the service mutex.
    const std::size_t queue_depth = slow ? queue_->Depth() : 0;
    {
      primacy::MutexLock lock(mu_);
      --tenant.inflight;
      switch (response.status) {
        case ServiceStatus::kOk:
          ++tenant.stats.completed;
          ++stats_.completed;
          break;
        case ServiceStatus::kCancelled:
          ++tenant.stats.cancelled;
          ++stats_.cancelled;
          break;
        default:
          ++tenant.stats.failed;
          ++stats_.failed;
          break;
      }
      if (slow) {
        SlowRequestEvent event;
        event.tenant = tenant.config.name;
        event.type = type == RequestType::kCompress        ? "compress"
                     : type == RequestType::kDecompressRange
                         ? "decompress_range"
                         : "decompress";
        event.status = response.status;
        event.bytes = payload.size();
        event.admit_ns = admit_ns;
        event.latency_ns = latency_ns;
        event.slo_ns = options_.slow_request_slo_ns;
        event.queue_depth = queue_depth;
        event.tenant_inflight = tenant.inflight;
        slow_requests_.push_back(std::move(event));
        while (slow_requests_.size() > options_.slow_request_log_capacity) {
          slow_requests_.pop_front();
        }
      }
    }
    cv_.NotifyAll();  // completions free in-flight capacity
    tenant.metrics.inflight->Add(-1);
    auto& reg = telemetry::MetricsRegistry::Global();
    reg.GetCounter("primacy_service_requests_total",
                   "tenant=\"" + tenant.config.name + "\",result=\"" +
                       ResultLabel(response.status) + "\"")
        .Increment();
    reg.GetHistogram("primacy_service_batch_latency_seconds",
                     kLatencySecondsBounds)
        .Observe(static_cast<double>(latency_ns) * 1e-9);
    if (slow) {
      reg.GetCounter("primacy_slow_requests_total",
                     "tenant=\"" + tenant.config.name + "\"")
          .Increment();
      // Instant marker in the trace so the SLO breach is visible next to
      // the spans that caused it.
      telemetry::TraceSpan slow_span("primacy.slow_request", "latency_ns",
                                     latency_ns);
    }
    promise->set_value(std::move(response));
  });
  return future;
}

void CompressionService::DispatchBatch(BatchQueue::Batch&& batch) {
  if (batch.items.empty()) return;
  auto& registry = telemetry::MetricsRegistry::Global();
  const char* trigger = "drain";
  switch (batch.trigger) {
    case FlushTrigger::kSize: trigger = "size"; break;
    case FlushTrigger::kCount: trigger = "count"; break;
    case FlushTrigger::kTimeout: trigger = "timeout"; break;
    case FlushTrigger::kDrain: trigger = "drain"; break;
  }
  registry
      .GetCounter("primacy_service_batches_total",
                  std::string("trigger=\"") + trigger + "\"")
      .Increment();
  registry.GetCounter("primacy_service_batch_items_total")
      .Increment(batch.items.size());
  registry.GetGauge("primacy_service_queue_depth")
      .Add(-static_cast<std::int64_t>(batch.items.size()));
  registry.GetGauge("primacy_service_queue_bytes")
      .Add(-static_cast<std::int64_t>(batch.bytes));
  double fill = 1.0;
  if (options_.batch.flush_requests != 0 || options_.batch.flush_bytes != 0) {
    const double by_count =
        options_.batch.flush_requests == 0
            ? 0.0
            : static_cast<double>(batch.items.size()) /
                  static_cast<double>(options_.batch.flush_requests);
    const double by_bytes =
        options_.batch.flush_bytes == 0
            ? 0.0
            : static_cast<double>(batch.bytes) /
                  static_cast<double>(options_.batch.flush_bytes);
    fill = std::min(1.0, std::max(by_count, by_bytes));
  }
  registry.GetHistogram("primacy_service_batch_fill_ratio", kFillRatioBounds)
      .Observe(fill);

  {
    primacy::MutexLock lock(mu_);
    ++outstanding_batches_;
  }
  auto shared = std::make_shared<BatchQueue::Batch>(std::move(batch));
  SharedThreadPool().Submit([this, shared] {
    try {
      ExecuteBatch(*shared);
    } catch (...) {
      // Item work never throws (it catches codec errors into the response);
      // anything surfacing here is resource exhaustion mid-batch. The
      // outstanding count must still drop or the destructor deadlocks.
    }
    {
      primacy::MutexLock lock(mu_);
      --outstanding_batches_;
      // Notify while still holding mu_: the destructor destroys cv_ the
      // moment it observes outstanding_batches_ == 0, and it can only
      // observe that after this lock drops — so the notify is guaranteed
      // to finish on a live condition variable.
      cv_.NotifyAll();
    }
  });
}

void CompressionService::ExecuteBatch(BatchQueue::Batch& batch) {
  const std::size_t count = batch.items.size();
  if (count == 1) {
    CodecContext* context = CheckOutContext();
    batch.items[0].work(*context);
    ReturnContext(context);
    return;
  }
  const std::size_t width = SharedThreadPool().num_threads() + 1;
  const std::size_t max_slots = options_.max_batch_parallelism == 0
                                    ? width
                                    : options_.max_batch_parallelism;
  // Items execute in parallel across slots; each slot checks out one
  // context lazily and reuses it for every item it claims, so a batch costs
  // at most `slots` checkouts no matter how many requests it carries.
  std::vector<CodecContext*> slot_contexts(std::min(count, max_slots),
                                           nullptr);
  try {
    SharedThreadPool().ParallelForSlots(
        count, max_slots, [&](std::size_t slot, std::size_t i) {
          if (slot_contexts[slot] == nullptr) {
            slot_contexts[slot] = CheckOutContext();
          }
          batch.items[i].work(*slot_contexts[slot]);
        });
  } catch (...) {
    for (CodecContext* context : slot_contexts) {
      if (context != nullptr) ReturnContext(context);
    }
    throw;
  }
  for (CodecContext* context : slot_contexts) {
    if (context != nullptr) ReturnContext(context);
  }
}

CodecContext* CompressionService::CheckOutContext() {
  {
    primacy::MutexLock lock(context_mu_);
    if (!free_contexts_.empty()) {
      CodecContext* context = free_contexts_.back();
      free_contexts_.pop_back();
      return context;
    }
  }
  // Build outside the lock (solver construction allocates); peak context
  // count is bounded by peak concurrent batch slots, which the pool bounds.
  auto context = std::make_unique<CodecContext>(options_.codec);
  CodecContext* raw = context.get();
  primacy::MutexLock lock(context_mu_);
  contexts_.push_back(std::move(context));
  return raw;
}

void CompressionService::ReturnContext(CodecContext* context) {
  primacy::MutexLock lock(context_mu_);
  free_contexts_.push_back(context);
}

}  // namespace primacy::service
