#include "service/clock.h"

#include <algorithm>
#include <chrono>

#include "util/error.h"

namespace primacy::service {

namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

SystemServiceClock& SystemServiceClock::Instance() {
  static SystemServiceClock clock;
  // Touch the epoch so NowNs is monotonic from the first Instance() call.
  ProcessEpoch();
  return clock;
}

std::uint64_t SystemServiceClock::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

void SystemServiceClock::WaitUntil(primacy::Mutex& mu, primacy::CondVar& cv,
                                   std::uint64_t deadline_ns) {
  if (deadline_ns == kNoDeadlineNs) {
    cv.Wait(mu);
    return;
  }
  cv.WaitUntil(mu, ProcessEpoch() + std::chrono::nanoseconds(deadline_ns));
}

void VirtualClock::RegisterWaiter(primacy::Mutex* mutex, primacy::CondVar* cv) {
  PRIMACY_CHECK(mutex != nullptr && cv != nullptr);
  primacy::MutexLock guard(mu_);
  waiters_.emplace_back(mutex, cv);
}

void VirtualClock::UnregisterWaiter(primacy::CondVar* cv) {
  primacy::MutexLock guard(mu_);
  std::erase_if(waiters_, [cv](const auto& w) { return w.second == cv; });
}

void VirtualClock::WaitUntil(primacy::Mutex& mu, primacy::CondVar& cv,
                             std::uint64_t deadline_ns) {
  // The caller holds `mu` from this check until cv.Wait releases it, and
  // Advance locks the same mutex before notifying, so either the new time
  // is visible here or the notify arrives after the wait begins.
  if (NowNs() >= deadline_ns) return;
  cv.Wait(mu);
}

std::uint64_t VirtualClock::Advance(std::uint64_t delta_ns) {
  const std::uint64_t now =
      now_ns_.fetch_add(delta_ns, std::memory_order_acq_rel) + delta_ns;
  NotifyAllWaiters();
  return now;
}

void VirtualClock::AdvanceTo(std::uint64_t now_ns) {
  std::uint64_t current = now_ns_.load(std::memory_order_acquire);
  while (current < now_ns &&
         !now_ns_.compare_exchange_weak(current, now_ns,
                                        std::memory_order_acq_rel)) {
  }
  NotifyAllWaiters();
}

void VirtualClock::NotifyAllWaiters() {
  // The whole notify loop runs under mu_: UnregisterWaiter blocks until a
  // concurrent Advance is done with the registered pointers, so a component
  // that unregisters in its destructor can never have its mutex/cv touched
  // after teardown. No lock-order cycle is possible because the only path
  // that acquires mu_ while holding a waiter's mutex would be a
  // Register/Unregister call made under that mutex, which the registration
  // contract forbids (WaitUntil itself never touches mu_).
  primacy::MutexLock guard(mu_);
  for (auto& [mutex, cv] : waiters_) {
    primacy::MutexLock waiter_guard(*mutex);
    cv->NotifyAll();
  }
}

}  // namespace primacy::service
