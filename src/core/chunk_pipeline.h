// The per-chunk encode/decode pipeline shared by the one-shot
// PrimacyCompressor/PrimacyDecompressor and the streaming writer/reader.
//
// A ChunkEncoder carries the cross-chunk state (previous frequency vector +
// index for IndexMode::kReuseWhenCorrelated) and turns one chunk of
// *native-layout element bytes* into one self-delimiting chunk record; a
// ChunkDecoder mirrors it. The surrounding stream header/tail framing lives
// with the callers.
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "bitstream/byte_io.h"
#include "compress/codec.h"
#include "core/frequency.h"
#include "core/primacy_codec.h"
#include "telemetry/stage.h"

namespace primacy {

/// Bucket bounds of the primacy_{encode,decode}_stage_seconds histogram
/// families. Registry histograms fix their buckets at first registration,
/// so anyone resolving those series (the service_load bench's percentile
/// reporter) must pass exactly these bounds.
std::span<const double> StageSecondsBounds();

/// Accounting for a single encoded chunk.
struct ChunkRecordStats {
  std::size_t elements = 0;
  std::size_t record_bytes = 0;
  std::size_t index_bytes = 0;
  bool emitted_full_index = false;
  bool emitted_delta_index = false;
  std::size_t id_compressed_bytes = 0;
  std::size_t mantissa_stream_bytes = 0;
  std::size_t mantissa_raw_bytes = 0;
  double compressible_fraction = 0.0;
  double top_byte_frequency_before = 0.0;
  double top_byte_frequency_after = 0.0;
  /// Per-stage encode time for this chunk (zero when telemetry is off).
  telemetry::StageBreakdown stage;
};

/// Folds one chunk's accounting into per-stream totals. The per-chunk mean
/// fields (top-byte frequencies, compressible fraction) are accumulated as
/// running sums; call FinalizeChunkStatMeans once after the last chunk to
/// divide them through. Shared by the one-shot compressor, the streaming
/// writer, and the in-situ driver.
void AccumulateChunkStats(PrimacyStats& totals, const ChunkRecordStats& chunk);
void FinalizeChunkStatMeans(PrimacyStats& totals);

class ChunkEncoder {
 public:
  /// `solver` must outlive the encoder; `options` is copied (so a temporary
  /// is fine — ASan caught a dangling reference from exactly that).
  ChunkEncoder(const PrimacyOptions& options, const Codec& solver);

  /// Encodes one chunk (native element layout, size = multiple of the
  /// precision's element width) and appends its record to `out`.
  ChunkRecordStats EncodeChunk(ByteSpan chunk, Bytes& out);

  /// Drops the cross-chunk index state (a fresh index will be emitted next).
  void Reset();

 private:
  const PrimacyOptions options_;
  const Codec& solver_;
  // Reused across chunks: each EncodeChunk analyzes into freq_scratch_ and
  // then swaps it into prev_freq_, so the 256 KiB counts buffer is allocated
  // once per encoder instead of once per chunk.
  PairFrequency freq_scratch_;
  std::optional<PairFrequency> prev_freq_;
  std::optional<IdIndex> prev_index_;
};

class ChunkDecoder {
 public:
  ChunkDecoder(const Codec& solver, Linearization linearization,
               std::size_t element_width);

  /// Decodes one chunk record body from `reader`. The caller has already
  /// consumed the record's leading element-count varint (so it can detect
  /// end-of-chunks sentinels); the restored native-layout bytes are appended
  /// to `out`.
  void DecodeChunk(ByteReader& reader, std::uint64_t count, Bytes& out);

  /// Same, but writes the restored bytes straight into `out`, which must be
  /// exactly count * element_width bytes. This is the parallel-decode path:
  /// each chunk's output position is known from the v2 directory, so workers
  /// decode into disjoint slices of one preallocated buffer with no
  /// intermediate append/copy.
  void DecodeChunkInto(ByteReader& reader, std::uint64_t count,
                       MutableByteSpan out);

  /// Seeds the cross-chunk index state. Range reads resolve the index chain
  /// (nearest full index plus deltas) out-of-band and prime the decoder with
  /// the result before decoding the covering chunks.
  void SetIndex(IdIndex index) { index_ = std::move(index); }

  /// Per-stage decode time accumulated across every chunk this decoder has
  /// decoded (zero when telemetry is off).
  const telemetry::StageBreakdown& stage_breakdown() const { return stage_; }

  /// Charges externally measured work (e.g. the caller's checksum pass over
  /// the record bytes) to one of this decoder's stages, registry included.
  void AddStageNs(telemetry::Stage stage, std::uint64_t ns);

 private:
  const Codec& solver_;
  Linearization linearization_;
  std::size_t width_;
  std::optional<IdIndex> index_;
  telemetry::StageBreakdown stage_;
};

}  // namespace primacy
