#include "core/stream_format.h"

#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "util/error.h"

namespace primacy::internal {
namespace {
constexpr std::uint32_t kMagic = 0x31595250;          // "PRY1"
constexpr std::uint32_t kDirectoryMagic = 0x32445250;  // "PRD2"
constexpr std::size_t kFooterBytes = 12;
}  // namespace

void WriteStreamHeader(Bytes& out, const PrimacyOptions& options,
                       std::uint64_t total_bytes, bool stored,
                       std::uint8_t version) {
  PutU32(out, kMagic);
  PutU8(out, version);
  std::uint8_t flags =
      options.linearization == Linearization::kColumn ? 1 : 0;
  if (stored) flags |= 2;
  PutU8(out, flags);
  PutU8(out, static_cast<std::uint8_t>(ElementWidth(options.precision)));
  PutBlock(out, BytesFromString(options.solver));
  PutVarint(out, total_bytes);
}

StreamHeader ReadStreamHeader(ByteReader& reader) {
  if (reader.GetU32() != kMagic) {
    throw CorruptStreamError("primacy: bad magic");
  }
  const std::uint8_t version = reader.GetU8();
  if (version != kFormatVersion1 && version != kFormatVersion2) {
    throw CorruptStreamError("primacy: unsupported version");
  }
  const std::uint8_t flags = reader.GetU8();
  if (flags > 3) {
    throw CorruptStreamError("primacy: bad header flags");
  }
  StreamHeader header;
  header.version = version;
  header.linearization =
      (flags & 1) != 0 ? Linearization::kColumn : Linearization::kRow;
  header.stored = (flags & 2) != 0;
  const std::uint8_t width = reader.GetU8();
  if (width != 4 && width != 8) {
    throw CorruptStreamError("primacy: unsupported element width");
  }
  header.width = width;
  header.solver_name = StringFromBytes(reader.GetBlock());
  RegisterBuiltinCodecs();
  if (!CodecRegistry::Global().Contains(header.solver_name)) {
    throw CorruptStreamError("primacy: unknown solver " + header.solver_name);
  }
  header.total_bytes = reader.GetVarint();
  return header;
}

void AppendChunkDirectory(Bytes& out, const ChunkDirectory& directory) {
  Bytes payload;
  PutVarint(payload, directory.chunks.size());
  std::uint64_t prev_offset = 0;
  for (const ChunkDirectoryEntry& entry : directory.chunks) {
    PutVarint(payload, entry.offset - prev_offset);
    PutVarint(payload, entry.elements);
    PutU8(payload, entry.index_flag);
    prev_offset = entry.offset;
  }
  PutVarint(payload, directory.tail_offset - prev_offset);
  AppendBytes(out, payload);
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, static_cast<std::uint32_t>(directory.chunks.size()));
  PutU32(out, kDirectoryMagic);
}

ChunkDirectory ReadChunkDirectory(ByteSpan stream, std::size_t chunks_begin) {
  if (stream.size() < chunks_begin + kFooterBytes) {
    throw CorruptStreamError("primacy: stream too small for a directory");
  }
  ByteReader footer(stream.subspan(stream.size() - kFooterBytes));
  const std::uint32_t payload_bytes = footer.GetU32();
  const std::uint32_t footer_count = footer.GetU32();
  if (footer.GetU32() != kDirectoryMagic) {
    throw CorruptStreamError("primacy: bad directory magic");
  }
  if (payload_bytes > stream.size() - chunks_begin - kFooterBytes) {
    throw CorruptStreamError("primacy: directory size out of range");
  }
  const std::size_t directory_begin =
      stream.size() - kFooterBytes - payload_bytes;
  ByteReader reader(stream.subspan(directory_begin, payload_bytes));
  const std::uint64_t count = reader.GetVarint();
  if (count != footer_count) {
    throw CorruptStreamError("primacy: directory chunk count mismatch");
  }
  ChunkDirectory directory;
  directory.chunks.reserve(count);
  std::uint64_t prev_offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    ChunkDirectoryEntry entry;
    const std::uint64_t delta = reader.GetVarint();
    entry.offset = prev_offset + delta;
    entry.elements = reader.GetVarint();
    entry.index_flag = reader.GetU8();
    if (i == 0) {
      if (entry.offset != chunks_begin) {
        throw CorruptStreamError("primacy: directory first offset mismatch");
      }
    } else if (delta == 0) {
      throw CorruptStreamError("primacy: directory offsets not increasing");
    }
    if (entry.elements == 0) {
      throw CorruptStreamError("primacy: directory chunk with zero elements");
    }
    if (entry.index_flag > 2) {
      throw CorruptStreamError("primacy: bad directory index flag");
    }
    prev_offset = entry.offset;
    directory.chunks.push_back(entry);
  }
  directory.tail_offset = prev_offset + reader.GetVarint();
  directory.directory_offset = directory_begin;
  if (!directory.chunks.empty() && directory.chunks.front().index_flag != 1) {
    throw CorruptStreamError("primacy: first chunk lacks a full index");
  }
  if (!directory.chunks.empty() && directory.tail_offset <= prev_offset) {
    throw CorruptStreamError("primacy: directory tail offset out of range");
  }
  if (directory.tail_offset > directory_begin ||
      directory.tail_offset < chunks_begin) {
    throw CorruptStreamError("primacy: directory tail offset out of range");
  }
  if (!reader.AtEnd()) {
    throw CorruptStreamError("primacy: trailing directory bytes");
  }
  return directory;
}

std::shared_ptr<const Codec> ResolveSolver(const std::string& name) {
  RegisterBuiltinCodecs();
  return std::shared_ptr<const Codec>(CreateCodec(name));
}

}  // namespace primacy::internal
