#include "core/stream_format.h"

#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "util/checksum.h"
#include "util/error.h"

namespace primacy::internal {
namespace {
constexpr std::uint32_t kMagic = 0x31595250;            // "PRY1"
constexpr std::uint32_t kDirectoryMagicV2 = 0x32445250;  // "PRD2"
constexpr std::uint32_t kDirectoryMagicV3 = 0x33445250;  // "PRD3"
constexpr std::size_t kFooterBytesV2 = 12;
constexpr std::size_t kFooterBytesV3 = 20;

std::size_t FooterBytes(std::uint8_t version) {
  return version >= kFormatVersion3 ? kFooterBytesV3 : kFooterBytesV2;
}
}  // namespace

void WriteStreamHeader(Bytes& out, const PrimacyOptions& options,
                       std::uint64_t total_bytes, bool stored,
                       std::uint8_t version) {
  PutU32(out, kMagic);
  PutU8(out, version);
  std::uint8_t flags =
      options.linearization == Linearization::kColumn ? 1 : 0;
  if (stored) flags |= 2;
  PutU8(out, flags);
  PutU8(out, static_cast<std::uint8_t>(ElementWidth(options.precision)));
  PutBlock(out, BytesFromString(options.solver));
  PutVarint(out, total_bytes);
}

StreamHeader ReadStreamHeader(ByteReader& reader) {
  if (reader.GetU32() != kMagic) {
    throw CorruptStreamError("primacy: bad magic");
  }
  const std::uint8_t version = reader.GetU8();
  if (version < kFormatVersion1 || version > kFormatVersion3) {
    throw CorruptStreamError("primacy: unsupported version");
  }
  const std::uint8_t flags = reader.GetU8();
  if (flags > 3) {
    throw CorruptStreamError("primacy: bad header flags");
  }
  StreamHeader header;
  header.version = version;
  header.linearization =
      (flags & 1) != 0 ? Linearization::kColumn : Linearization::kRow;
  header.stored = (flags & 2) != 0;
  const std::uint8_t width = reader.GetU8();
  if (width != 4 && width != 8) {
    throw CorruptStreamError("primacy: unsupported element width");
  }
  header.width = width;
  header.solver_name = StringFromBytes(reader.GetBlock());
  RegisterBuiltinCodecs();
  if (!CodecRegistry::Global().Contains(header.solver_name)) {
    throw CorruptStreamError("primacy: unknown solver " + header.solver_name);
  }
  header.total_bytes = reader.GetVarint();
  return header;
}

void AppendChunkDirectory(Bytes& out, const ChunkDirectory& directory,
                          std::uint8_t version) {
  const bool checksums = version >= kFormatVersion3;
  const std::size_t directory_begin = out.size();
  Bytes payload;
  PutVarint(payload, directory.chunks.size());
  std::uint64_t prev_offset = 0;
  for (std::size_t i = 0; i < directory.chunks.size(); ++i) {
    const ChunkDirectoryEntry& entry = directory.chunks[i];
    PutVarint(payload, entry.offset - prev_offset);
    PutVarint(payload, entry.elements);
    PutU8(payload, entry.index_flag);
    if (checksums) {
      // Record extent = [this offset, next offset or the tail block).
      const std::uint64_t end = i + 1 < directory.chunks.size()
                                    ? directory.chunks[i + 1].offset
                                    : directory.tail_offset;
      PutU64(payload, Xxh64(ByteSpan(out).subspan(
                          static_cast<std::size_t>(entry.offset),
                          static_cast<std::size_t>(end - entry.offset))));
    }
    prev_offset = entry.offset;
  }
  PutVarint(payload, directory.tail_offset - prev_offset);
  if (checksums) {
    // Everything the per-chunk checksums do not cover: the header bytes
    // [0, first record) and the tail block [tail_offset, directory).
    const std::size_t chunks_begin =
        directory.chunks.empty()
            ? static_cast<std::size_t>(directory.tail_offset)
            : static_cast<std::size_t>(directory.chunks.front().offset);
    Xxh64State state;
    state.Update(ByteSpan(out).first(chunks_begin));
    state.Update(ByteSpan(out).subspan(
        static_cast<std::size_t>(directory.tail_offset),
        directory_begin - static_cast<std::size_t>(directory.tail_offset)));
    PutU64(payload, state.Digest());
  }
  AppendBytes(out, payload);
  if (checksums) {
    PutU64(out, Xxh64(payload));
  }
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, static_cast<std::uint32_t>(directory.chunks.size()));
  PutU32(out, checksums ? kDirectoryMagicV3 : kDirectoryMagicV2);
}

ChunkDirectory ReadChunkDirectory(ByteSpan stream, std::size_t chunks_begin,
                                  std::uint8_t version) {
  const bool checksums = version >= kFormatVersion3;
  const std::size_t footer_bytes = FooterBytes(version);
  if (stream.size() < chunks_begin + footer_bytes) {
    throw CorruptStreamError("primacy: stream too small for a directory");
  }
  ByteReader footer(stream.subspan(stream.size() - footer_bytes));
  const std::uint64_t directory_checksum = checksums ? footer.GetU64() : 0;
  const std::uint32_t payload_bytes = footer.GetU32();
  const std::uint32_t footer_count = footer.GetU32();
  if (footer.GetU32() !=
      (checksums ? kDirectoryMagicV3 : kDirectoryMagicV2)) {
    throw CorruptStreamError("primacy: bad directory magic");
  }
  if (payload_bytes > stream.size() - chunks_begin - footer_bytes) {
    throw CorruptStreamError("primacy: directory size out of range");
  }
  const std::size_t directory_begin =
      stream.size() - footer_bytes - payload_bytes;
  const ByteSpan payload = stream.subspan(directory_begin, payload_bytes);
  if (checksums && Xxh64(payload) != directory_checksum) {
    throw CorruptStreamError("primacy: directory checksum mismatch");
  }
  ByteReader reader(payload);
  const std::uint64_t count = reader.GetVarint();
  if (count != footer_count) {
    throw CorruptStreamError("primacy: directory chunk count mismatch");
  }
  ChunkDirectory directory;
  directory.has_checksums = checksums;
  directory.chunks.reserve(count);
  std::uint64_t prev_offset = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    ChunkDirectoryEntry entry;
    const std::uint64_t delta = reader.GetVarint();
    // Overflow-safe: every record offset must land inside
    // [chunks_begin, directory_begin), so the delta may never exceed the
    // room left before the directory.
    if (delta > directory_begin - prev_offset) {
      throw CorruptStreamError("primacy: directory offset out of range");
    }
    entry.offset = prev_offset + delta;
    entry.elements = reader.GetVarint();
    entry.index_flag = reader.GetU8();
    if (checksums) entry.checksum = reader.GetU64();
    if (i == 0) {
      if (entry.offset != chunks_begin) {
        throw CorruptStreamError("primacy: directory first offset mismatch");
      }
    } else if (delta == 0) {
      throw CorruptStreamError("primacy: directory offsets not increasing");
    }
    if (entry.elements == 0) {
      throw CorruptStreamError("primacy: directory chunk with zero elements");
    }
    if (entry.index_flag > 2) {
      throw CorruptStreamError("primacy: bad directory index flag");
    }
    prev_offset = entry.offset;
    directory.chunks.push_back(entry);
  }
  const std::uint64_t tail_delta = reader.GetVarint();
  if (tail_delta > directory_begin - prev_offset) {
    throw CorruptStreamError("primacy: directory tail offset out of range");
  }
  directory.tail_offset = prev_offset + tail_delta;
  directory.directory_offset = directory_begin;
  if (checksums) directory.header_tail_checksum = reader.GetU64();
  if (!directory.chunks.empty() && directory.chunks.front().index_flag != 1) {
    throw CorruptStreamError("primacy: first chunk lacks a full index");
  }
  if (!directory.chunks.empty() && directory.tail_offset <= prev_offset) {
    throw CorruptStreamError("primacy: directory tail offset out of range");
  }
  if (directory.tail_offset > directory_begin ||
      directory.tail_offset < chunks_begin) {
    throw CorruptStreamError("primacy: directory tail offset out of range");
  }
  if (!reader.AtEnd()) {
    throw CorruptStreamError("primacy: trailing directory bytes");
  }
  return directory;
}

std::uint64_t ComputeHeaderTailChecksum(ByteSpan stream,
                                        const ChunkDirectory& directory,
                                        std::size_t chunks_begin) {
  Xxh64State state;
  state.Update(stream.first(chunks_begin));
  state.Update(stream.subspan(
      static_cast<std::size_t>(directory.tail_offset),
      static_cast<std::size_t>(directory.directory_offset -
                               directory.tail_offset)));
  return state.Digest();
}

std::shared_ptr<const Codec> ResolveSolver(const std::string& name) {
  RegisterBuiltinCodecs();
  return std::shared_ptr<const Codec>(CreateCodec(name));
}

}  // namespace primacy::internal
