#include "core/stream_format.h"

#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "util/error.h"

namespace primacy::internal {
namespace {
constexpr std::uint32_t kMagic = 0x31595250;  // "PRY1"
constexpr std::uint8_t kVersion = 1;
}  // namespace

void WriteStreamHeader(Bytes& out, const PrimacyOptions& options,
                       std::uint64_t total_bytes, bool stored) {
  PutU32(out, kMagic);
  PutU8(out, kVersion);
  std::uint8_t flags =
      options.linearization == Linearization::kColumn ? 1 : 0;
  if (stored) flags |= 2;
  PutU8(out, flags);
  PutU8(out, static_cast<std::uint8_t>(ElementWidth(options.precision)));
  PutBlock(out, BytesFromString(options.solver));
  PutVarint(out, total_bytes);
}

StreamHeader ReadStreamHeader(ByteReader& reader) {
  if (reader.GetU32() != kMagic) {
    throw CorruptStreamError("primacy: bad magic");
  }
  if (reader.GetU8() != kVersion) {
    throw CorruptStreamError("primacy: unsupported version");
  }
  const std::uint8_t flags = reader.GetU8();
  if (flags > 3) {
    throw CorruptStreamError("primacy: bad header flags");
  }
  StreamHeader header;
  header.linearization =
      (flags & 1) != 0 ? Linearization::kColumn : Linearization::kRow;
  header.stored = (flags & 2) != 0;
  const std::uint8_t width = reader.GetU8();
  if (width != 4 && width != 8) {
    throw CorruptStreamError("primacy: unsupported element width");
  }
  header.width = width;
  header.solver_name = StringFromBytes(reader.GetBlock());
  RegisterBuiltinCodecs();
  if (!CodecRegistry::Global().Contains(header.solver_name)) {
    throw CorruptStreamError("primacy: unknown solver " + header.solver_name);
  }
  header.total_bytes = reader.GetVarint();
  return header;
}

std::shared_ptr<const Codec> ResolveSolver(const std::string& name) {
  RegisterBuiltinCodecs();
  return std::shared_ptr<const Codec>(CreateCodec(name));
}

}  // namespace primacy::internal
