#include "core/streaming.h"

#include "compress/registry.h"
#include "telemetry/trace.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/timer.h"

namespace primacy {

PrimacyStreamWriter::PrimacyStreamWriter(Sink sink, PrimacyOptions options)
    : sink_(std::move(sink)),
      options_(std::move(options)),
      solver_(internal::ResolveSolver(options_.solver)),
      encoder_(options_, *solver_) {
  if (!sink_) {
    throw InvalidArgumentError("PrimacyStreamWriter: null sink");
  }
  if (options_.chunk_bytes < ElementWidth(options_.precision)) {
    throw InvalidArgumentError("PrimacyStreamWriter: chunk_bytes too small");
  }
  Bytes header;
  // Streaming mode: the total byte count is unknown up front; the header
  // stores the sentinel and the real count follows the end-of-chunks
  // sentinel in the trailer. Streamed streams stay v1: the writer cannot
  // seek back to plant a directory, and the reader is sequential anyway.
  internal::WriteStreamHeader(header, options_, kStreamingTotal,
                              /*stored=*/false, internal::kFormatVersion1);
  Emit(header);
}

void PrimacyStreamWriter::Emit(ByteSpan data) {
  stats_.output_bytes += data.size();
  sink_(data);
}

void PrimacyStreamWriter::Append(std::span<const double> values) {
  if (options_.precision != Precision::kDouble) {
    throw InvalidArgumentError(
        "PrimacyStreamWriter: double input requires Precision::kDouble");
  }
  AppendBytes(AsBytes(values));
}

void PrimacyStreamWriter::Append(std::span<const float> values) {
  if (options_.precision != Precision::kSingle) {
    throw InvalidArgumentError(
        "PrimacyStreamWriter: float input requires Precision::kSingle");
  }
  AppendBytes(AsBytes(values));
}

void PrimacyStreamWriter::AppendBytes(ByteSpan data) {
  if (finished_) {
    throw InvalidArgumentError("PrimacyStreamWriter: Append after Finish");
  }
  primacy::AppendBytes(pending_, data);
  stats_.input_bytes += data.size();
  EncodeBufferedChunks(/*flush_partial=*/false);
}

void PrimacyStreamWriter::EncodeBufferedChunks(bool flush_partial) {
  const std::size_t width = ElementWidth(options_.precision);
  const std::size_t chunk_bytes =
      (options_.chunk_bytes / width) * width;  // whole elements per chunk
  std::size_t offset = 0;
  Bytes records;
  while (pending_.size() - offset >= chunk_bytes) {
    telemetry::TraceSpan span("primacy.stream_encode_chunk", "chunk",
                              static_cast<std::uint64_t>(stats_.chunks));
    AccumulateChunkStats(
        stats_, encoder_.EncodeChunk(
                    ByteSpan(pending_).subspan(offset, chunk_bytes), records));
    offset += chunk_bytes;
  }
  if (flush_partial) {
    const std::size_t remaining = pending_.size() - offset;
    const std::size_t whole = (remaining / width) * width;
    if (whole > 0) {
      AccumulateChunkStats(
          stats_, encoder_.EncodeChunk(
                      ByteSpan(pending_).subspan(offset, whole), records));
      offset += whole;
    }
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(offset));
  if (!records.empty()) Emit(records);
}

PrimacyStats PrimacyStreamWriter::Finish() {
  if (finished_) {
    throw InvalidArgumentError("PrimacyStreamWriter: double Finish");
  }
  finished_ = true;
  EncodeBufferedChunks(/*flush_partial=*/true);

  Bytes trailer;
  PutVarint(trailer, 0);  // end-of-chunks sentinel (chunk counts are >= 1)
  PutBlock(trailer, pending_);  // partial-element tail bytes
  PutVarint(trailer, stats_.input_bytes);
  pending_.clear();
  Emit(trailer);

  FinalizeChunkStatMeans(stats_);
  return stats_;
}

PrimacyStreamReader::PrimacyStreamReader(ByteSpan stream,
                                         bool verify_checksums)
    : stream_(stream),
      reader_(stream),
      header_(internal::ReadStreamHeader(reader_)) {
  solver_ = CreateCodec(header_.solver_name);
  decoder_ = std::make_unique<ChunkDecoder>(*solver_, header_.linearization,
                                            header_.width);
  if (header_.version >= internal::kFormatVersion3 && !header_.stored &&
      header_.total_bytes != kStreamingTotal) {
    // One-shot v3: the directory at the end holds the record checksums. It
    // is always loaded (its own checksum is verified inside
    // ReadChunkDirectory — corrupt bounds must never be trusted); the
    // per-record and header/tail checks respect `verify_checksums`.
    directory_ = internal::ReadChunkDirectory(stream_, reader_.Offset(),
                                              header_.version);
    verify_ = verify_checksums;
    if (verify_ &&
        internal::ComputeHeaderTailChecksum(stream_, *directory_,
                                            reader_.Offset()) !=
            directory_->header_tail_checksum) {
      throw CorruptStreamError("primacy: header/tail checksum mismatch");
    }
  } else if (header_.version >= internal::kFormatVersion3) {
    verify_ = verify_checksums;
  }
}

const telemetry::StageBreakdown& PrimacyStreamReader::stage_breakdown() const {
  return decoder_->stage_breakdown();
}

bool PrimacyStreamReader::NextChunk(Bytes& out) {
  if (saw_trailer_) return false;
  telemetry::TraceSpan span("primacy.stream_next_chunk", "chunk",
                            static_cast<std::uint64_t>(chunk_index_));
  if (header_.stored) {
    const ByteSpan raw = reader_.GetBlock();
    if (raw.size() != header_.total_bytes) {
      throw CorruptStreamError("primacy: stored payload size mismatch");
    }
    if (header_.version >= internal::kFormatVersion3) {
      // v3 stored streams end with an XXH64 of every preceding byte.
      const std::size_t covered = reader_.Offset();
      const std::uint64_t stored_checksum = reader_.GetU64();
      if (verify_ && Xxh64(stream_.first(covered)) != stored_checksum) {
        throw CorruptStreamError("primacy: stored stream checksum mismatch");
      }
    }
    AppendBytes(out, raw);
    decoded_bytes_ += raw.size();
    saw_trailer_ = true;
    return false;
  }
  if (header_.total_bytes != kStreamingTotal) {
    // One-shot stream: chunk records until total_bytes are produced.
    const std::uint64_t total_elements = header_.total_bytes / header_.width;
    if (decoded_bytes_ / header_.width >= total_elements) {
      const ByteSpan tail = reader_.GetBlock();
      if (decoded_bytes_ + tail.size() != header_.total_bytes) {
        throw CorruptStreamError("primacy: tail size mismatch");
      }
      AppendBytes(out, tail);
      decoded_bytes_ += tail.size();
      saw_trailer_ = true;
      return false;
    }
    if (verify_ && directory_.has_value()) {
      const WallTimer checksum_timer;
      if (chunk_index_ >= directory_->chunks.size()) {
        throw CorruptStreamError(
            "primacy: more chunk records than directory entries");
      }
      const internal::ChunkDirectoryEntry& entry =
          directory_->chunks[chunk_index_];
      const std::uint64_t end = chunk_index_ + 1 < directory_->chunks.size()
                                    ? directory_->chunks[chunk_index_ + 1].offset
                                    : directory_->tail_offset;
      if (reader_.Offset() != entry.offset) {
        throw CorruptStreamError("primacy: chunk record offset mismatch");
      }
      const ByteSpan record = stream_.subspan(
          static_cast<std::size_t>(entry.offset),
          static_cast<std::size_t>(end - entry.offset));
      if (Xxh64(record) != entry.checksum) {
        throw CorruptStreamError(
            "primacy: chunk " + std::to_string(chunk_index_) +
            " (record at byte " + std::to_string(entry.offset) +
            "): checksum mismatch");
      }
      decoder_->AddStageNs(telemetry::Stage::kChecksum,
                           checksum_timer.ElapsedNs());
    }
    const std::uint64_t count = reader_.GetVarint();
    if (count == 0 ||
        decoded_bytes_ / header_.width + count > total_elements) {
      throw CorruptStreamError("primacy: bad chunk element count");
    }
    decoder_->DecodeChunk(reader_, count, out);
    decoded_bytes_ += count * header_.width;
    ++chunk_index_;
    return true;
  }
  // Streaming stream: records until the 0 sentinel, then tail + total.
  const std::uint64_t count = reader_.GetVarint();
  if (count == 0) {
    const ByteSpan tail = reader_.GetBlock();
    AppendBytes(out, tail);
    decoded_bytes_ += tail.size();
    const std::uint64_t declared_total = reader_.GetVarint();
    if (declared_total != decoded_bytes_) {
      throw CorruptStreamError("primacy: trailer total mismatch");
    }
    saw_trailer_ = true;
    return false;
  }
  decoder_->DecodeChunk(reader_, count, out);
  decoded_bytes_ += count * header_.width;
  return true;
}

std::vector<double> PrimacyStreamReader::ReadAllDoubles() {
  if (header_.width != 8) {
    throw InvalidArgumentError(
        "PrimacyStreamReader: stream holds single-precision data");
  }
  Bytes out;
  while (NextChunk(out)) {
  }
  if (out.size() % 8 != 0) {
    throw CorruptStreamError("primacy: stream is not a whole double array");
  }
  return FromBytes<double>(out);
}

}  // namespace primacy
