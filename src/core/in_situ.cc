#include "core/in_situ.h"

#include <numeric>

#include "util/error.h"

namespace primacy {

std::size_t InSituResult::TotalCompressedBytes() const {
  return std::accumulate(
      shards.begin(), shards.end(), std::size_t{0},
      [](std::size_t sum, const Bytes& shard) { return sum + shard.size(); });
}

InSituResult InSituCompress(std::span<const double> values,
                            const InSituOptions& options) {
  if (options.shard_elements == 0) {
    throw InvalidArgumentError("InSituCompress: shard_elements must be > 0");
  }
  const std::size_t shard_count =
      values.empty() ? 0
                     : (values.size() + options.shard_elements - 1) /
                           options.shard_elements;

  InSituResult result;
  result.shards.resize(shard_count);
  std::vector<PrimacyStats> stats(shard_count);

  const PrimacyCompressor compressor(options.primacy);
  ThreadPool pool(options.threads);
  pool.ParallelFor(shard_count, [&](std::size_t shard) {
    const std::size_t first = shard * options.shard_elements;
    const std::size_t count =
        std::min(options.shard_elements, values.size() - first);
    result.shards[shard] =
        compressor.Compress(values.subspan(first, count), &stats[shard]);
  });

  for (const PrimacyStats& s : stats) {
    result.totals.chunks += s.chunks;
    result.totals.indexes_emitted += s.indexes_emitted;
    result.totals.input_bytes += s.input_bytes;
    result.totals.output_bytes += s.output_bytes;
    result.totals.index_bytes += s.index_bytes;
    result.totals.id_compressed_bytes += s.id_compressed_bytes;
    result.totals.mantissa_stream_bytes += s.mantissa_stream_bytes;
    result.totals.mantissa_raw_bytes += s.mantissa_raw_bytes;
  }
  if (shard_count > 0) {
    const auto n = static_cast<double>(shard_count);
    double before = 0.0, after = 0.0, fraction = 0.0;
    for (const PrimacyStats& s : stats) {
      before += s.top_byte_frequency_before;
      after += s.top_byte_frequency_after;
      fraction += s.mean_compressible_fraction;
    }
    result.totals.top_byte_frequency_before = before / n;
    result.totals.top_byte_frequency_after = after / n;
    result.totals.mean_compressible_fraction = fraction / n;
  }
  return result;
}

std::vector<double> InSituDecompress(const std::vector<Bytes>& shards,
                                     const InSituOptions& options) {
  const PrimacyDecompressor decompressor(options.primacy);
  std::vector<std::vector<double>> pieces(shards.size());
  ThreadPool pool(options.threads);
  pool.ParallelFor(shards.size(), [&](std::size_t shard) {
    pieces[shard] = decompressor.Decompress(shards[shard]);
  });
  std::vector<double> out;
  for (const auto& piece : pieces) {
    out.insert(out.end(), piece.begin(), piece.end());
  }
  return out;
}

}  // namespace primacy
