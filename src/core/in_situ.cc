#include "core/in_situ.h"

#include <algorithm>
#include <numeric>

#include "bitstream/byte_io.h"
#include "core/stream_format.h"
#include "telemetry/trace.h"
#include "util/error.h"

namespace primacy {
namespace {

/// Element count of a self-contained shard stream, read from its header
/// without decoding any payload.
std::uint64_t ShardElements(ByteSpan shard) {
  ByteReader reader(shard);
  const internal::StreamHeader header = internal::ReadStreamHeader(reader);
  if (header.total_bytes == ~std::uint64_t{0}) {
    throw InvalidArgumentError(
        "InSituDecompressRange: streamed shard has no element count");
  }
  if (header.width != 8) {
    throw InvalidArgumentError("InSituDecompressRange: shard is not doubles");
  }
  return header.total_bytes / header.width;
}

void Accumulate(PrimacyDecodeStats& totals, const PrimacyDecodeStats& s) {
  totals.chunks_decoded += s.chunks_decoded;
  totals.index_loads += s.index_loads;
  totals.output_bytes += s.output_bytes;
  totals.used_directory = totals.used_directory || s.used_directory;
  totals.chunks_verified += s.chunks_verified;
  totals.cache_hits += s.cache_hits;
  totals.cache_misses += s.cache_misses;
  totals.prefetch_issued += s.prefetch_issued;
  totals.stage.Accumulate(s.stage);
}

}  // namespace

std::size_t InSituResult::TotalCompressedBytes() const {
  return std::accumulate(
      shards.begin(), shards.end(), std::size_t{0},
      [](std::size_t sum, const Bytes& shard) { return sum + shard.size(); });
}

InSituResult InSituCompress(std::span<const double> values,
                            const InSituOptions& options) {
  if (options.shard_elements == 0) {
    throw InvalidArgumentError("InSituCompress: shard_elements must be > 0");
  }
  const std::size_t shard_count =
      values.empty() ? 0
                     : (values.size() + options.shard_elements - 1) /
                           options.shard_elements;

  InSituResult result;
  result.shards.resize(shard_count);
  std::vector<PrimacyStats> stats(shard_count);

  const PrimacyCompressor compressor(options.primacy);
  SharedThreadPool().ParallelForSlots(
      shard_count, options.threads, [&](std::size_t, std::size_t shard) {
        telemetry::TraceSpan span("primacy.insitu_compress_shard", "shard",
                                  static_cast<std::uint64_t>(shard));
        const std::size_t first = shard * options.shard_elements;
        const std::size_t count =
            std::min(options.shard_elements, values.size() - first);
        result.shards[shard] =
            compressor.Compress(values.subspan(first, count), &stats[shard]);
      });

  for (const PrimacyStats& s : stats) {
    result.totals.chunks += s.chunks;
    result.totals.indexes_emitted += s.indexes_emitted;
    result.totals.delta_indexes += s.delta_indexes;
    result.totals.input_bytes += s.input_bytes;
    result.totals.output_bytes += s.output_bytes;
    result.totals.index_bytes += s.index_bytes;
    result.totals.id_compressed_bytes += s.id_compressed_bytes;
    result.totals.mantissa_stream_bytes += s.mantissa_stream_bytes;
    result.totals.mantissa_raw_bytes += s.mantissa_raw_bytes;
    result.totals.stage.Accumulate(s.stage);
  }
  if (shard_count > 0) {
    const auto n = static_cast<double>(shard_count);
    double before = 0.0, after = 0.0, fraction = 0.0;
    for (const PrimacyStats& s : stats) {
      before += s.top_byte_frequency_before;
      after += s.top_byte_frequency_after;
      fraction += s.mean_compressible_fraction;
    }
    result.totals.top_byte_frequency_before = before / n;
    result.totals.top_byte_frequency_after = after / n;
    result.totals.mean_compressible_fraction = fraction / n;
  }
  return result;
}

InSituDecodeResult InSituDecompressWithStats(const std::vector<Bytes>& shards,
                                             const InSituOptions& options) {
  // Shard-parallel on the shared pool; each shard decodes serially inside
  // (the outer fan-out already saturates the requested concurrency).
  PrimacyOptions shard_options = options.primacy;
  shard_options.threads = 1;
  const PrimacyDecompressor decompressor(std::move(shard_options));
  std::vector<std::vector<double>> pieces(shards.size());
  std::vector<PrimacyDecodeStats> stats(shards.size());
  SharedThreadPool().ParallelForSlots(
      shards.size(), options.threads, [&](std::size_t, std::size_t shard) {
        telemetry::TraceSpan span("primacy.insitu_decode_shard", "shard",
                                  static_cast<std::uint64_t>(shard));
        pieces[shard] = decompressor.Decompress(shards[shard], &stats[shard]);
      });

  InSituDecodeResult result;
  std::size_t total = 0;
  for (const auto& piece : pieces) total += piece.size();
  result.values.reserve(total);
  for (const auto& piece : pieces) {
    result.values.insert(result.values.end(), piece.begin(), piece.end());
  }
  for (const PrimacyDecodeStats& s : stats) Accumulate(result.totals, s);
  return result;
}

std::vector<double> InSituDecompress(const std::vector<Bytes>& shards,
                                     const InSituOptions& options) {
  return InSituDecompressWithStats(shards, options).values;
}

InSituDecodeResult InSituDecompressRange(const std::vector<Bytes>& shards,
                                         std::uint64_t first_element,
                                         std::uint64_t count,
                                         const InSituOptions& options) {
  // Map the global element range onto shard-local ranges from the headers
  // alone, then range-read only the overlapping shards.
  std::vector<std::uint64_t> starts(shards.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    starts[i] = total;
    total += ShardElements(shards[i]);
  }
  if (first_element > total || count > total - first_element) {
    throw InvalidArgumentError("InSituDecompressRange: range out of bounds");
  }

  struct ShardRange {
    std::size_t shard;
    std::uint64_t local_first;
    std::uint64_t local_count;
    std::uint64_t result_offset;
  };
  std::vector<ShardRange> ranges;
  for (std::size_t i = 0; i < shards.size() && count > 0; ++i) {
    const std::uint64_t shard_end =
        i + 1 < shards.size() ? starts[i + 1] : total;
    const std::uint64_t overlap_first = std::max(starts[i], first_element);
    const std::uint64_t overlap_end =
        std::min(shard_end, first_element + count);
    if (overlap_first >= overlap_end) continue;
    ranges.push_back({i, overlap_first - starts[i],
                      overlap_end - overlap_first,
                      overlap_first - first_element});
  }

  InSituDecodeResult result;
  result.values.resize(static_cast<std::size_t>(count));
  PrimacyOptions shard_options = options.primacy;
  shard_options.threads = 1;
  const PrimacyDecompressor decompressor(std::move(shard_options));
  std::vector<PrimacyDecodeStats> stats(ranges.size());
  SharedThreadPool().ParallelForSlots(
      ranges.size(), options.threads, [&](std::size_t, std::size_t r) {
        const ShardRange& range = ranges[r];
        telemetry::TraceSpan span("primacy.insitu_decode_shard", "shard",
                                  static_cast<std::uint64_t>(range.shard));
        const std::vector<double> piece = decompressor.DecompressRange(
            shards[range.shard], range.local_first, range.local_count,
            &stats[r]);
        PRIMACY_CHECK(piece.size() == range.local_count);
        std::copy(piece.begin(), piece.end(),
                  result.values.begin() +
                      static_cast<std::ptrdiff_t>(range.result_offset));
      });
  for (const PrimacyDecodeStats& s : stats) Accumulate(result.totals, s);
  return result;
}

}  // namespace primacy
