// The PRIMACY compressor/decompressor: the paper's Algorithm 1 end to end.
//
// Per 3 MB chunk of doubles:
//   1. split the N x 8 byte matrix into high-order N x 2 and mantissa N x 6;
//   2. frequency-analyze the high-order byte pairs and build the ID index;
//   3. rewrite high-order pairs as frequency-ranked IDs, column-linearized;
//   4. compress the ID bytes with the solver codec;
//   5. run the ISOBAR analyzer/partitioner on the mantissa matrix: solver-
//      compress the compressible byte columns, store the rest raw;
//   6. emit [header | index | compressed IDs | ISOBAR stream] per chunk.
//
// Stream format:
//   u32 magic "PRY1", u8 linearization, u8 element_width,
//   block(solver name), varint byte_count
//   per chunk:
//     varint chunk_elements
//     u8 index_flag (1 = full index follows, 0 = reuse previous index,
//                    2 = delta: extend the previous index with the listed
//                        sequences, appended at the high-ID end)
//     [block(index or delta sequence list)]
//     block(solver-compressed ID bytes)
//     block(ISOBAR mantissa stream)
#pragma once

#include <memory>
#include <string>

#include "compress/codec.h"
#include "core/id_mapper.h"
#include "isobar/analyzer.h"

namespace primacy {

/// Per-chunk index policy (paper Section II-F; kReuseWhenCorrelated is the
/// "more intelligent indexing scheme" sketched as future work).
enum class IndexMode {
  kPerChunk,
  kReuseWhenCorrelated,
};

/// Element precision. The paper evaluates double precision and notes the
/// mapping scheme generalizes to other precisions (Section IV-B); single
/// precision splits each 4-byte element into a 2-byte high-order part (sign +
/// exponent + leading mantissa bits) and a 2-byte mantissa tail.
enum class Precision {
  kDouble,  // 8-byte elements, 2 high-order + 6 mantissa bytes
  kSingle,  // 4-byte elements, 2 high-order + 2 mantissa bytes
};

constexpr std::size_t ElementWidth(Precision precision) {
  return precision == Precision::kDouble ? 8 : 4;
}

struct PrimacyOptions {
  /// Chunk size in bytes of input data; the paper settles on 3 MB.
  std::size_t chunk_bytes = 3 * 1024 * 1024;
  /// Solver codec name (resolved through the registry).
  std::string solver = "deflate";
  Linearization linearization = Linearization::kColumn;
  IndexMode index_mode = IndexMode::kPerChunk;
  /// Frequency-vector correlation above which kReuseWhenCorrelated keeps the
  /// previous chunk's index.
  double index_reuse_correlation = 0.95;
  Precision precision = Precision::kDouble;
  /// Worker threads for chunk-parallel compression (0 = hardware
  /// concurrency, 1 = serial). Only kPerChunk indexing parallelizes: chunks
  /// are then independent, and the output is byte-identical to a serial
  /// run. kReuseWhenCorrelated has a serial cross-chunk dependency and
  /// ignores this knob.
  std::size_t threads = 1;
  IsobarOptions isobar;
};

/// Per-stream accounting used by the benches and EXPERIMENTS.md tables.
struct PrimacyStats {
  std::size_t chunks = 0;
  std::size_t indexes_emitted = 0;  // full per-chunk indexes
  std::size_t delta_indexes = 0;    // delta extensions under kReuseWhenCorrelated
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  std::size_t index_bytes = 0;
  std::size_t id_compressed_bytes = 0;
  std::size_t mantissa_stream_bytes = 0;
  std::size_t mantissa_raw_bytes = 0;  // stored-verbatim share of mantissa
  /// Mean fraction of mantissa columns ISOBAR judged compressible (alpha2).
  double mean_compressible_fraction = 0.0;
  /// Repeatability (top byte frequency) of the high-order bytes before and
  /// after ID mapping — the paper's Section II-C "+15%" metric.
  double top_byte_frequency_before = 0.0;
  double top_byte_frequency_after = 0.0;

  double CompressionRatio() const {
    return output_bytes == 0
               ? 0.0
               : static_cast<double>(input_bytes) /
                     static_cast<double>(output_bytes);
  }
};

/// The preconditioner + solver pipeline over a stream of doubles.
class PrimacyCompressor {
 public:
  explicit PrimacyCompressor(PrimacyOptions options = {});

  /// Compresses `values`; `stats` (optional) receives per-stage accounting.
  /// The double overload requires Precision::kDouble options, the float
  /// overload Precision::kSingle.
  Bytes Compress(std::span<const double> values,
                 PrimacyStats* stats = nullptr) const;
  Bytes Compress(std::span<const float> values,
                 PrimacyStats* stats = nullptr) const;

  /// Raw-byte interface: any trailing bytes beyond a whole number of
  /// elements are stored verbatim.
  Bytes CompressBytes(ByteSpan data, PrimacyStats* stats = nullptr) const;

  const PrimacyOptions& options() const { return options_; }

 private:
  PrimacyOptions options_;
  std::shared_ptr<const Codec> solver_;
};

class PrimacyDecompressor {
 public:
  /// The solver is recovered from the options; streams do not embed it, as
  /// in the paper's deployment where the solver is fixed per run.
  explicit PrimacyDecompressor(PrimacyOptions options = {});

  std::vector<double> Decompress(ByteSpan stream) const;
  std::vector<float> DecompressSingle(ByteSpan stream) const;
  Bytes DecompressBytes(ByteSpan stream) const;

 private:
  PrimacyOptions options_;
  std::shared_ptr<const Codec> solver_;
};

/// Implements Codec so PRIMACY(solver) can drop into any harness slot that
/// expects a plain byte codec (sizes must be multiples of 8; other sizes
/// throw InvalidArgumentError).
class PrimacyCodec final : public Codec {
 public:
  explicit PrimacyCodec(PrimacyOptions options = {});

  std::string_view name() const override { return "primacy"; }
  Bytes Compress(ByteSpan data) const override;
  Bytes Decompress(ByteSpan data) const override;

 private:
  PrimacyCompressor compressor_;
  PrimacyDecompressor decompressor_;
};

}  // namespace primacy
