// The PRIMACY compressor/decompressor: the paper's Algorithm 1 end to end.
//
// Per 3 MB chunk of doubles:
//   1. split the N x 8 byte matrix into high-order N x 2 and mantissa N x 6;
//   2. frequency-analyze the high-order byte pairs and build the ID index;
//   3. rewrite high-order pairs as frequency-ranked IDs, column-linearized;
//   4. compress the ID bytes with the solver codec;
//   5. run the ISOBAR analyzer/partitioner on the mantissa matrix: solver-
//      compress the compressible byte columns, store the rest raw;
//   6. emit [header | index | compressed IDs | ISOBAR stream] per chunk.
//
// Stream format (v3; readers also accept v1, which stops after the tail,
// and v2, which lacks the checksum fields):
//   u32 magic "PRY1", u8 version (1, 2 or 3), u8 flags (bit 0 = column
//   linearization, bit 1 = stored fallback), u8 element_width,
//   block(solver name), varint byte_count
//   per chunk:
//     varint chunk_elements
//     u8 index_flag (1 = full index follows, 0 = reuse previous index,
//                    2 = delta: extend the previous index with the listed
//                        sequences, appended at the high-ID end)
//     [block(index or delta sequence list)]
//     block(solver-compressed ID bytes)
//     block(ISOBAR mantissa stream)
//   block(tail bytes beyond a whole number of elements)
//   v2/v3 only — chunk directory, so readers can jump to any chunk without
//   scanning (parallel decode, random-access range reads):
//     varint chunk_count
//     per chunk: varint record_offset_delta, varint chunk_elements,
//                u8 index_flag (copied from the record; lets a reader plan
//                parallel decode groups and index chains without touching
//                record bytes),
//                v3: u64 XXH64 of the chunk's record bytes
//     varint tail_offset_delta
//     v3: u64 XXH64 of the header bytes ++ tail-block bytes
//   footer (fixed size, read from the end):
//     v2 (12 bytes): u32 directory_bytes, u32 chunk_count, u32 magic "PRD2"
//     v3 (20 bytes): u64 XXH64 of the directory payload, u32 directory_bytes,
//                    u32 chunk_count, u32 magic "PRD3"
//   v3 stored fallback: the raw block is followed by a trailing u64 XXH64
//   of every preceding stream byte (stored streams have no directory).
//
// Checksum coverage (v3): every byte before the footer is covered by
// exactly one checksum — chunk records by their directory entry, header and
// tail block by the header/tail checksum, the directory payload (which
// contains the other checksums) by the footer checksum — so a single
// flipped bit anywhere is detected, and a range read can verify just the
// chunks it touches plus the (small) header/tail and directory.
//
// Versioning rules: the header magic/version are always the first 5 bytes;
// unknown versions are rejected. v3 readers decode v1/v2 streams (v1
// serially — no directory to parallelize over; both without checksum
// verification — there is nothing to verify); older readers reject newer
// versions by the version byte. Streamed (unknown-length) streams are
// always v1: the writer cannot seek back, and PrimacyStreamReader is
// sequential by construction.
#pragma once

#include <memory>
#include <string>

#include "cache/block_cache.h"
#include "compress/codec.h"
#include "core/id_mapper.h"
#include "isobar/analyzer.h"
#include "telemetry/stage.h"

namespace primacy {

class ChunkEncoder;  // chunk_pipeline.h

/// Per-chunk index policy (paper Section II-F; kReuseWhenCorrelated is the
/// "more intelligent indexing scheme" sketched as future work).
enum class IndexMode {
  kPerChunk,
  kReuseWhenCorrelated,
};

/// Element precision. The paper evaluates double precision and notes the
/// mapping scheme generalizes to other precisions (Section IV-B); single
/// precision splits each 4-byte element into a 2-byte high-order part (sign +
/// exponent + leading mantissa bits) and a 2-byte mantissa tail.
enum class Precision {
  kDouble,  // 8-byte elements, 2 high-order + 6 mantissa bytes
  kSingle,  // 4-byte elements, 2 high-order + 2 mantissa bytes
};

constexpr std::size_t ElementWidth(Precision precision) {
  return precision == Precision::kDouble ? 8 : 4;
}

struct PrimacyOptions {
  /// Chunk size in bytes of input data; the paper settles on 3 MB.
  std::size_t chunk_bytes = 3 * 1024 * 1024;
  /// Solver codec name (resolved through the registry).
  std::string solver = "deflate";
  Linearization linearization = Linearization::kColumn;
  IndexMode index_mode = IndexMode::kPerChunk;
  /// Frequency-vector correlation above which kReuseWhenCorrelated keeps the
  /// previous chunk's index.
  double index_reuse_correlation = 0.95;
  Precision precision = Precision::kDouble;
  /// Worker threads for chunk-parallel compression and decompression
  /// (0 = hardware concurrency, 1 = serial). Work runs on the process-wide
  /// SharedThreadPool; this knob only bounds per-call concurrency.
  /// Compression: only kPerChunk indexing parallelizes (chunks are then
  /// independent, and the output is byte-identical to a serial run);
  /// kReuseWhenCorrelated has a serial cross-chunk dependency and ignores
  /// this knob. Decompression: v2 streams decode index-chain groups in
  /// parallel (every chunk is its own group under kPerChunk), byte-identical
  /// to serial; v1 streams always decode serially.
  std::size_t threads = 1;
  /// Decode-side integrity knob: verify the per-chunk and header/tail
  /// checksums of v3 streams before trusting their bytes (full decodes
  /// check every chunk; range reads check only the chunks they touch).
  /// Ignored for v1/v2 streams, which carry no checksums. The directory
  /// payload's own checksum is always verified — it drives every bounds
  /// computation — regardless of this setting.
  bool verify_checksums = true;
  /// Decoded-chunk cache knobs (off by default). When enabled, the
  /// decompressor constructed from these options builds a private
  /// DecodedBlockCache and serves repeated chunk decodes from it; cached
  /// results are byte-identical to a cold decode. v1 and stored streams
  /// are never cached (no chunk directory to key against; stored payloads
  /// are sliced directly).
  CacheOptions cache;
  /// Explicit cache instance, shared across decompressors (a CheckpointReader
  /// shares one across its per-call decompressors; callers can share one
  /// across readers). Takes precedence over `cache` — the knobs above are
  /// only consulted when this is null.
  std::shared_ptr<DecodedBlockCache> block_cache;
  IsobarOptions isobar;
};

/// Per-stream accounting used by the benches and EXPERIMENTS.md tables.
struct PrimacyStats {
  std::size_t chunks = 0;
  std::size_t indexes_emitted = 0;  // full per-chunk indexes
  std::size_t delta_indexes = 0;    // delta extensions under kReuseWhenCorrelated
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  std::size_t index_bytes = 0;
  std::size_t id_compressed_bytes = 0;
  std::size_t mantissa_stream_bytes = 0;
  std::size_t mantissa_raw_bytes = 0;  // stored-verbatim share of mantissa
  /// Mean fraction of mantissa columns ISOBAR judged compressible (alpha2).
  double mean_compressible_fraction = 0.0;
  /// Repeatability (top byte frequency) of the high-order bytes before and
  /// after ID mapping — the paper's Section II-C "+15%" metric.
  double top_byte_frequency_before = 0.0;
  double top_byte_frequency_after = 0.0;
  /// Wall time spent in each encode stage, summed across chunks (and across
  /// workers when chunk-parallel — i.e. CPU time, which can exceed the call's
  /// wall time). All-zero when built with PRIMACY_TELEMETRY=OFF.
  telemetry::StageBreakdown stage;

  double CompressionRatio() const {
    return output_bytes == 0
               ? 0.0
               : static_cast<double>(input_bytes) /
                     static_cast<double>(output_bytes);
  }
};

/// The preconditioner + solver pipeline over a stream of doubles.
class PrimacyCompressor {
 public:
  explicit PrimacyCompressor(PrimacyOptions options = {});

  /// Compresses `values`; `stats` (optional) receives per-stage accounting.
  /// The double overload requires Precision::kDouble options, the float
  /// overload Precision::kSingle.
  Bytes Compress(std::span<const double> values,
                 PrimacyStats* stats = nullptr) const;
  Bytes Compress(std::span<const float> values,
                 PrimacyStats* stats = nullptr) const;

  /// Raw-byte interface: any trailing bytes beyond a whole number of
  /// elements are stored verbatim.
  Bytes CompressBytes(ByteSpan data, PrimacyStats* stats = nullptr) const;

  /// As CompressBytes, but encodes through a caller-owned ChunkEncoder
  /// instead of constructing one per call, so long-lived callers (the
  /// service layer's batch workers) amortize encoder scratch allocation
  /// across requests. The encoder is Reset() first and must have been built
  /// with the same options/solver as this compressor. Always takes the
  /// serial path; output is byte-identical to CompressBytes with
  /// threads == 1.
  Bytes CompressBytesWith(ChunkEncoder& encoder, ByteSpan data,
                          PrimacyStats* stats = nullptr) const;

  const PrimacyOptions& options() const { return options_; }

 private:
  Bytes CompressBytesImpl(ByteSpan data, ChunkEncoder* reuse,
                          PrimacyStats* stats) const;

  PrimacyOptions options_;
  std::shared_ptr<const Codec> solver_;
};

/// Per-call decode accounting: how much work a Decompress/DecompressRange
/// call actually did. The counters let tests and benches verify that range
/// reads touch only the covering chunks and that parallel decode engaged.
struct PrimacyDecodeStats {
  std::size_t chunks_decoded = 0;  // chunk records fully decoded
  /// Records whose index block was read (but not decoded) while resolving a
  /// range read's index chain under IndexMode::kReuseWhenCorrelated.
  std::size_t index_loads = 0;
  std::size_t threads_used = 1;  // decode slots actually provisioned
  std::size_t output_bytes = 0;
  bool used_directory = false;  // v2+ directory-driven decode
  /// Chunk records whose checksum was verified before decoding (v3 streams
  /// with verify_checksums on).
  std::size_t chunks_verified = 0;
  /// Chunks served from the decoded-block cache (no decode work; not
  /// counted in chunks_decoded) vs. looked up but absent. Both zero when
  /// no cache is configured.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Adjacent-chunk prefetch tasks handed to the shared pool by this call
  /// (best effort; completion is not awaited).
  std::size_t prefetch_issued = 0;
  /// Wall time per decode stage, summed across chunks and decode slots (CPU
  /// time under parallel decode). All-zero when PRIMACY_TELEMETRY=OFF.
  telemetry::StageBreakdown stage;
};

class PrimacyDecompressor {
 public:
  /// The solver is recovered from the stream header; `options` supplies the
  /// decode-side knobs (threads).
  explicit PrimacyDecompressor(PrimacyOptions options = {});

  std::vector<double> Decompress(ByteSpan stream,
                                 PrimacyDecodeStats* stats = nullptr) const;
  std::vector<float> DecompressSingle(ByteSpan stream,
                                      PrimacyDecodeStats* stats = nullptr) const;
  Bytes DecompressBytes(ByteSpan stream,
                        PrimacyDecodeStats* stats = nullptr) const;

  /// Random-access range read: decodes elements [first_element,
  /// first_element + count) touching only the chunks that cover the range
  /// (plus, under IndexMode::kReuseWhenCorrelated, the index blocks of the
  /// chain back to the nearest full index — counted in stats->index_loads,
  /// never decoded). Requires a v2 stream (or a stored stream, which is
  /// sliced directly); v1 streams throw InvalidArgumentError. An empty range
  /// is valid anywhere within [0, element_count]. Bytes beyond the last
  /// whole element (the stored tail) are not element-addressable.
  std::vector<double> DecompressRange(ByteSpan stream,
                                      std::uint64_t first_element,
                                      std::uint64_t count,
                                      PrimacyDecodeStats* stats = nullptr) const;
  std::vector<float> DecompressRangeSingle(
      ByteSpan stream, std::uint64_t first_element, std::uint64_t count,
      PrimacyDecodeStats* stats = nullptr) const;
  Bytes DecompressBytesRange(ByteSpan stream, std::uint64_t first_element,
                             std::uint64_t count,
                             PrimacyDecodeStats* stats = nullptr) const;

  /// The decoded-block cache this decompressor reads through: the instance
  /// supplied in options.block_cache, one built from options.cache, or null
  /// (uncached). Exposed so callers can inspect Stats() or share it.
  const std::shared_ptr<DecodedBlockCache>& cache() const { return cache_; }

 private:
  Bytes DecompressRangeImpl(ByteSpan stream, std::uint64_t first_element,
                            std::uint64_t count, std::size_t expected_width,
                            PrimacyDecodeStats* stats) const;

  PrimacyOptions options_;
  std::shared_ptr<DecodedBlockCache> cache_;
};

/// Outcome of a VerifyStream integrity pass.
struct StreamVerifyResult {
  bool ok = false;
  std::uint8_t version = 0;
  /// True when the stream carried checksums (v3) and verification was
  /// hash-only; false for v1/v2, where the fallback is a full decode.
  bool has_checksums = false;
  std::size_t chunks_checked = 0;
  /// Empty when ok; otherwise the failure message.
  std::string error;
};

/// Validates a stream's integrity without materializing its contents. For
/// v3 streams this hashes the chunk records, header/tail, and directory
/// against the stored checksums (no decompression). For v1/v2 streams —
/// which carry no checksums — it falls back to a full structural decode and
/// reports whether that succeeded. Never throws on corrupt input; the
/// failure is returned in the result.
StreamVerifyResult VerifyStream(ByteSpan stream);

/// Implements Codec so PRIMACY(solver) can drop into any harness slot that
/// expects a plain byte codec (sizes must be multiples of 8; other sizes
/// throw InvalidArgumentError).
class PrimacyCodec final : public Codec {
 public:
  explicit PrimacyCodec(PrimacyOptions options = {});

  std::string_view name() const override { return "primacy"; }
  Bytes Compress(ByteSpan data) const override;
  Bytes Decompress(ByteSpan data) const override;

 private:
  PrimacyCompressor compressor_;
  PrimacyDecompressor decompressor_;
};

}  // namespace primacy
