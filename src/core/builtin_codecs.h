// One-call registration of every codec shipped with the library. Safe to
// call repeatedly and from multiple threads.
#pragma once

namespace primacy {

/// Registers deflate, deflate-fast, lzfast, bwt, fpc, fpz, and primacy in the
/// global codec registry (idempotent).
void RegisterBuiltinCodecs();

}  // namespace primacy
