// Frequency analysis of high-order byte pairs and construction of the
// frequency-ordered ID index (paper Sections II-C and II-F).
//
// The index is the chunk's metadata: entry k is the 16-bit byte-sequence
// assigned ID k. IDs are handed out by descending frequency (ties broken by
// ascending byte-sequence value, making the mapping deterministic), so the
// most common pattern becomes ID 0 = two zero bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"

namespace primacy {

/// Frequency vector over the 65,536 possible high-order byte pairs of a
/// chunk. `counts[seq]` is the number of elements whose first two bytes
/// (big-endian significance) equal `seq`.
struct PairFrequency {
  std::vector<std::uint32_t> counts;  // size 65536

  std::size_t DistinctSequences() const;
};

/// Counts byte-pair frequencies over row-linearized high-order bytes
/// (N x 2 matrix).
PairFrequency AnalyzePairFrequency(ByteSpan high_bytes);

/// Same analysis into caller-owned storage: `frequency.counts` is (re)sized
/// to 65536 and zeroed, then accumulated into. Lets a chunk loop reuse one
/// 256 KiB buffer instead of allocating per chunk.
void AnalyzePairFrequencyInto(ByteSpan high_bytes, PairFrequency& frequency);

/// The bijective ID <-> byte-sequence mapping for one chunk.
class IdIndex {
 public:
  /// Builds the index from a frequency vector (paper's GENERATE-INDEX).
  static IdIndex FromFrequency(const PairFrequency& frequency);

  /// Rebuilds an index from its serialized sequence list.
  static IdIndex FromSequences(std::vector<std::uint16_t> sequences);

  /// Number of distinct sequences (= number of assigned IDs).
  std::size_t size() const { return sequences_.size(); }

  /// Byte-sequence assigned to `id`.
  std::uint16_t SequenceOf(std::size_t id) const { return sequences_[id]; }

  /// ID assigned to `sequence`, or kUnmapped when the sequence did not occur
  /// in the chunk the index was built from.
  static constexpr std::uint32_t kUnmapped = 0xffffffffu;
  std::uint32_t IdOf(std::uint16_t sequence) const {
    return ids_[sequence];
  }

  /// Sequence list in ID order (the serialized form).
  const std::vector<std::uint16_t>& sequences() const { return sequences_; }

  /// Raw lookup tables for the kernel layer (kernels take pointers, not this
  /// class). ids_table() has 65536 entries (sequence -> ID or kUnmapped);
  /// sequences_u32() is the ID-order sequence list widened to u32 so AVX2
  /// can gather from it without over-reading past a u16 entry.
  const std::uint32_t* ids_table() const { return ids_.data(); }
  const std::vector<std::uint32_t>& sequences_u32() const {
    return sequences32_;
  }

  /// Returns a copy of this index with `additions` appended at the high-ID
  /// end (the delta-index scheme of IndexMode::kReuseWhenCorrelated: old IDs
  /// keep their values, new sequences get the next IDs). Throws
  /// CorruptStreamError if an addition is already mapped.
  IdIndex Extended(std::span<const std::uint16_t> additions) const;

  /// Sequences occurring in `frequency` that this index does not map,
  /// ordered by descending frequency (ties: ascending sequence) — the
  /// deterministic delta an encoder must append before reusing this index.
  std::vector<std::uint16_t> MissingSequences(
      const PairFrequency& frequency) const;

 private:
  IdIndex() = default;
  std::vector<std::uint16_t> sequences_;   // indexed by ID
  std::vector<std::uint32_t> sequences32_; // sequences_ widened for gathers
  std::vector<std::uint32_t> ids_;         // indexed by sequence, size 65536
};

/// Serialization: varint count then fixed u16 sequences in ID order.
Bytes SerializeIndex(const IdIndex& index);
IdIndex DeserializeIndex(ByteSpan data);

/// Bare sequence lists (delta-index payloads) share the same wire format.
Bytes SerializeSequenceList(std::span<const std::uint16_t> sequences);
std::vector<std::uint16_t> DeserializeSequenceList(ByteSpan data);

}  // namespace primacy
