#include "core/frequency.h"

#include <algorithm>
#include <numeric>

#include "bitstream/byte_io.h"
#include "kernels/kernels.h"
#include "util/error.h"

namespace primacy {

std::size_t PairFrequency::DistinctSequences() const {
  std::size_t distinct = 0;
  for (const std::uint32_t count : counts) distinct += (count != 0);
  return distinct;
}

PairFrequency AnalyzePairFrequency(ByteSpan high_bytes) {
  PairFrequency frequency;
  AnalyzePairFrequencyInto(high_bytes, frequency);
  return frequency;
}

void AnalyzePairFrequencyInto(ByteSpan high_bytes, PairFrequency& frequency) {
  if (high_bytes.size() % 2 != 0) {
    throw InvalidArgumentError("AnalyzePairFrequency: odd byte count");
  }
  frequency.counts.assign(65536, 0);
  kernels::Active().count_pairs(high_bytes.data(), high_bytes.size() / 2,
                                frequency.counts.data());
}

IdIndex IdIndex::FromFrequency(const PairFrequency& frequency) {
  PRIMACY_CHECK(frequency.counts.size() == 65536);
  // Occurring sequences sorted by descending count, ties by ascending value.
  std::vector<std::uint32_t> occurring;
  for (std::uint32_t seq = 0; seq < 65536; ++seq) {
    if (frequency.counts[seq] != 0) occurring.push_back(seq);
  }
  std::stable_sort(occurring.begin(), occurring.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (frequency.counts[a] != frequency.counts[b]) {
                       return frequency.counts[a] > frequency.counts[b];
                     }
                     return a < b;
                   });
  IdIndex index;
  index.sequences_.assign(occurring.begin(), occurring.end());
  index.sequences32_ = std::move(occurring);
  index.ids_.assign(65536, kUnmapped);
  for (std::size_t id = 0; id < index.sequences_.size(); ++id) {
    index.ids_[index.sequences_[id]] = static_cast<std::uint32_t>(id);
  }
  return index;
}

IdIndex IdIndex::FromSequences(std::vector<std::uint16_t> sequences) {
  IdIndex index;
  index.ids_.assign(65536, kUnmapped);
  for (std::size_t id = 0; id < sequences.size(); ++id) {
    if (index.ids_[sequences[id]] != kUnmapped) {
      throw CorruptStreamError("IdIndex: duplicate sequence in index");
    }
    index.ids_[sequences[id]] = static_cast<std::uint32_t>(id);
  }
  index.sequences32_.assign(sequences.begin(), sequences.end());
  index.sequences_ = std::move(sequences);
  return index;
}

IdIndex IdIndex::Extended(std::span<const std::uint16_t> additions) const {
  IdIndex out;
  out.sequences_ = sequences_;
  out.sequences32_ = sequences32_;
  out.ids_ = ids_;
  if (out.ids_.empty()) out.ids_.assign(65536, kUnmapped);
  for (const std::uint16_t sequence : additions) {
    if (out.ids_[sequence] != kUnmapped) {
      throw CorruptStreamError("IdIndex::Extended: sequence already mapped");
    }
    out.ids_[sequence] = static_cast<std::uint32_t>(out.sequences_.size());
    out.sequences_.push_back(sequence);
    out.sequences32_.push_back(sequence);
  }
  return out;
}

std::vector<std::uint16_t> IdIndex::MissingSequences(
    const PairFrequency& frequency) const {
  std::vector<std::uint32_t> missing;
  for (std::uint32_t seq = 0; seq < 65536; ++seq) {
    if (frequency.counts[seq] != 0 &&
        IdOf(static_cast<std::uint16_t>(seq)) == kUnmapped) {
      missing.push_back(seq);
    }
  }
  std::stable_sort(missing.begin(), missing.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (frequency.counts[a] != frequency.counts[b]) {
                       return frequency.counts[a] > frequency.counts[b];
                     }
                     return a < b;
                   });
  return std::vector<std::uint16_t>(missing.begin(), missing.end());
}

Bytes SerializeSequenceList(std::span<const std::uint16_t> sequences) {
  Bytes out;
  PutVarint(out, sequences.size());
  for (const std::uint16_t sequence : sequences) {
    PutU16(out, sequence);
  }
  return out;
}

std::vector<std::uint16_t> DeserializeSequenceList(ByteSpan data) {
  ByteReader reader(data);
  const std::uint64_t count = reader.GetVarint();
  if (count > 65536) {
    throw CorruptStreamError("DeserializeSequenceList: impossible size");
  }
  std::vector<std::uint16_t> sequences;
  sequences.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    sequences.push_back(reader.GetU16());
  }
  if (!reader.AtEnd()) {
    throw CorruptStreamError("DeserializeSequenceList: trailing bytes");
  }
  return sequences;
}

Bytes SerializeIndex(const IdIndex& index) {
  return SerializeSequenceList(index.sequences());
}

IdIndex DeserializeIndex(ByteSpan data) {
  return IdIndex::FromSequences(DeserializeSequenceList(data));
}

}  // namespace primacy
