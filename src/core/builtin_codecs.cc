#include "core/builtin_codecs.h"

#include <mutex>

#include "bwt/bwt_codec.h"
#include "compress/registry.h"
#include "core/primacy_codec.h"
#include "deflate/deflate.h"
#include "fpc/fpc_codec.h"
#include "fpzip_like/fpz_codec.h"
#include "lzfast/lzfast.h"

namespace primacy {

void RegisterBuiltinCodecs() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& registry = CodecRegistry::Global();
    registry.Register("deflate", [] { return std::make_unique<DeflateCodec>(); });
    registry.Register("deflate-fast",
                      [] { return std::make_unique<DeflateFastCodec>(); });
    registry.Register("lzfast", [] { return std::make_unique<LzFastCodec>(); });
    registry.Register("bwt", [] { return std::make_unique<BwtCodec>(); });
    registry.Register("fpc", [] { return std::make_unique<FpcCodec>(); });
    registry.Register("fpz", [] { return std::make_unique<FpzCodec>(); });
    registry.Register("primacy",
                      [] { return std::make_unique<PrimacyCodec>(); });
  });
}

}  // namespace primacy
