#include "core/chunk_pipeline.h"

#include <bit>
#include <cstring>
#include <limits>
#include <vector>

#include "bitstream/byte_io.h"
#include "core/id_mapper.h"
#include "isobar/partitioned_codec.h"
#include "telemetry/metrics.h"
#include "telemetry/stage_stack.h"
#include "telemetry/trace.h"
#include "util/byte_matrix.h"
#include "util/error.h"
#include "util/stats.h"

namespace primacy {
namespace {

constexpr std::size_t kHighWidth = 2;

/// Per-chunk per-stage durations: 1 µs up to ~1 s, one bucket per decade.
constexpr std::array<double, 7> kStageSecondsBounds = {
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0};

/// Registry handles for the encode/decode pipelines, resolved once. The
/// per-stage counters live in one family keyed by a `stage` label so a
/// Prometheus scrape can compute stage shares with a single sum().
struct PipelineMetrics {
  telemetry::Counter& encode_chunks;
  telemetry::Counter& encode_input_bytes;
  telemetry::Counter& encode_output_bytes;
  telemetry::Counter& decode_chunks;
  telemetry::Counter& decode_output_bytes;
  telemetry::Histogram& encode_chunk_bytes;
  std::array<telemetry::Counter*, telemetry::kStageCount> encode_stage_ns;
  std::array<telemetry::Counter*, telemetry::kStageCount> decode_stage_ns;
  std::array<telemetry::Histogram*, telemetry::kStageCount>
      encode_stage_seconds;
  std::array<telemetry::Histogram*, telemetry::kStageCount>
      decode_stage_seconds;

  static PipelineMetrics& Get() {
    static PipelineMetrics* metrics = [] {
      // Record-size buckets from 1 KiB to 16 MiB, one per factor of 4.
      static constexpr std::array<double, 7> kChunkBytesBounds = {
          1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0, 4194304.0};
      auto& registry = telemetry::MetricsRegistry::Global();
      auto* m = new PipelineMetrics{
          registry.GetCounter("primacy_encode_chunks_total"),
          registry.GetCounter("primacy_encode_input_bytes_total"),
          registry.GetCounter("primacy_encode_output_bytes_total"),
          registry.GetCounter("primacy_decode_chunks_total"),
          registry.GetCounter("primacy_decode_output_bytes_total"),
          registry.GetHistogram("primacy_encode_chunk_bytes", kChunkBytesBounds),
          {},
          {},
          {},
          {}};
      for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
        const auto stage = static_cast<telemetry::Stage>(s);
        const std::string label =
            "stage=\"" + std::string(telemetry::StageName(stage)) + "\"";
        m->encode_stage_ns[s] =
            &registry.GetCounter("primacy_encode_stage_ns_total", label);
        m->decode_stage_ns[s] =
            &registry.GetCounter("primacy_decode_stage_ns_total", label);
        m->encode_stage_seconds[s] = &registry.GetHistogram(
            "primacy_encode_stage_seconds", kStageSecondsBounds, label);
        m->decode_stage_seconds[s] = &registry.GetHistogram(
            "primacy_decode_stage_seconds", kStageSecondsBounds, label);
      }
      return m;
    }();
    return *metrics;
  }
};

/// Publishes one chunk's stage laps to the registry counter family and the
/// matching per-chunk duration histograms.
void PublishStageNs(
    const std::array<telemetry::Counter*, telemetry::kStageCount>& counters,
    const std::array<telemetry::Histogram*, telemetry::kStageCount>& seconds,
    const telemetry::StageBreakdown& breakdown) {
  for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
    if (breakdown.ns[s] != 0) {
      counters[s]->Increment(breakdown.ns[s]);
      seconds[s]->Observe(static_cast<double>(breakdown.ns[s]) * 1e-9);
    }
  }
}

Bytes ToBigEndianRows(ByteSpan chunk, std::size_t width) {
  if (width == 8) return DoublesToBigEndianRows(FromBytes<double>(chunk));
  PRIMACY_CHECK(width == 4);
  return FloatsToBigEndianRows(FromBytes<float>(chunk));
}

double FrequencyCorrelation(const PairFrequency& a, const PairFrequency& b) {
  std::vector<std::uint64_t> va(a.counts.begin(), a.counts.end());
  std::vector<std::uint64_t> vb(b.counts.begin(), b.counts.end());
  return PearsonCorrelation(va, vb);
}

}  // namespace

std::span<const double> StageSecondsBounds() { return kStageSecondsBounds; }

void AccumulateChunkStats(PrimacyStats& totals, const ChunkRecordStats& chunk) {
  totals.chunks += 1;
  if (chunk.emitted_full_index) totals.indexes_emitted += 1;
  if (chunk.emitted_delta_index) totals.delta_indexes += 1;
  totals.index_bytes += chunk.index_bytes;
  totals.id_compressed_bytes += chunk.id_compressed_bytes;
  totals.mantissa_stream_bytes += chunk.mantissa_stream_bytes;
  totals.mantissa_raw_bytes += chunk.mantissa_raw_bytes;
  // Accumulated as running sums; FinalizeChunkStatMeans divides by chunks.
  totals.mean_compressible_fraction += chunk.compressible_fraction;
  totals.top_byte_frequency_before += chunk.top_byte_frequency_before;
  totals.top_byte_frequency_after += chunk.top_byte_frequency_after;
  totals.stage.Accumulate(chunk.stage);
}

void FinalizeChunkStatMeans(PrimacyStats& totals) {
  if (totals.chunks == 0) return;
  const double n = static_cast<double>(totals.chunks);
  totals.mean_compressible_fraction /= n;
  totals.top_byte_frequency_before /= n;
  totals.top_byte_frequency_after /= n;
}

ChunkEncoder::ChunkEncoder(const PrimacyOptions& options, const Codec& solver)
    : options_(options), solver_(solver) {}

void ChunkEncoder::Reset() {
  prev_freq_.reset();
  prev_index_.reset();
}

ChunkRecordStats ChunkEncoder::EncodeChunk(ByteSpan chunk, Bytes& out) {
  const std::size_t width = ElementWidth(options_.precision);
  if (chunk.empty() || chunk.size() % width != 0) {
    throw InvalidArgumentError("ChunkEncoder: chunk size must be a non-zero "
                               "multiple of the element width");
  }
  const std::size_t record_start = out.size();
  const std::size_t count = chunk.size() / width;
  telemetry::TraceSpan span("primacy.encode_chunk", "elements",
                            static_cast<std::uint64_t>(count));
  ChunkRecordStats stats;
  stats.elements = count;
  telemetry::StageClock clock;
  // Marks the worker's live stage for the sampling profiler; retargeted at
  // each stage boundary alongside the lap-timer charge.
  telemetry::StageScope profile(telemetry::Stage::kSplit);

  // 1. Big-endian byte significance, then the high/low split.
  const Bytes rows = ToBigEndianRows(chunk, width);
  const SplitBytes split = SplitHighLow(rows, width, kHighWidth);
  clock.Lap(stats.stage, telemetry::Stage::kSplit);
  profile.Switch(telemetry::Stage::kFrequency);

  // 2. Frequency analysis + index selection. Under kReuseWhenCorrelated, a
  // chunk whose frequency vector correlates with the previous chunk's keeps
  // the previous ID assignment; unseen sequences are appended as a small
  // delta (paper Section II-F's "more intelligent indexing scheme"). Old IDs
  // never change, so decoding stays in lockstep.
  AnalyzePairFrequencyInto(split.high, freq_scratch_);
  const PairFrequency& freq = freq_scratch_;
  enum class IndexAction { kFresh, kReuse, kDelta };
  IndexAction action = IndexAction::kFresh;
  std::vector<std::uint16_t> delta;
  if (options_.index_mode == IndexMode::kReuseWhenCorrelated &&
      prev_index_.has_value() && prev_freq_.has_value() &&
      FrequencyCorrelation(*prev_freq_, freq) >=
          options_.index_reuse_correlation) {
    delta = prev_index_->MissingSequences(freq);
    if (delta.empty()) {
      action = IndexAction::kReuse;
    } else if (delta.size() <= prev_index_->size() / 4 + 16) {
      action = IndexAction::kDelta;
    }
  }
  if (action == IndexAction::kFresh) {
    prev_index_ = IdIndex::FromFrequency(freq);
  } else if (action == IndexAction::kDelta) {
    prev_index_ = prev_index_->Extended(delta);
  }
  // Swap (not copy) the counts into prev_freq_; next chunk's analyze will
  // overwrite freq_scratch_ anyway, so nothing is lost and no 256 KiB copy
  // happens per chunk.
  if (!prev_freq_.has_value()) prev_freq_.emplace();
  std::swap(prev_freq_->counts, freq_scratch_.counts);
  const IdIndex& index = *prev_index_;
  clock.Lap(stats.stage, telemetry::Stage::kFrequency);
  profile.Switch(telemetry::Stage::kIdMap);

  // 3-4. ID mapping, linearization, solver compression.
  const Bytes id_bytes = MapToIds(split.high, index, options_.linearization);
  clock.Lap(stats.stage, telemetry::Stage::kIdMap);
  profile.Switch(telemetry::Stage::kSolver);
  const Bytes id_compressed = solver_.Compress(id_bytes);
  clock.Lap(stats.stage, telemetry::Stage::kSolver);
  profile.Switch(telemetry::Stage::kIsobar);

  // 5. ISOBAR on the mantissa matrix.
  const IsobarCompressed mantissa =
      IsobarCompress(split.low, width - kHighWidth, solver_, options_.isobar);
  clock.Lap(stats.stage, telemetry::Stage::kIsobar);
  profile.Switch(telemetry::Stage::kSerialize);

  // 6. Chunk record.
  PutVarint(out, count);
  switch (action) {
    case IndexAction::kReuse:
      PutU8(out, 0);
      break;
    case IndexAction::kFresh: {
      PutU8(out, 1);
      const Bytes serialized_index = SerializeIndex(index);
      stats.index_bytes = serialized_index.size();
      stats.emitted_full_index = true;
      PutBlock(out, serialized_index);
      break;
    }
    case IndexAction::kDelta: {
      PutU8(out, 2);
      const Bytes serialized_delta = SerializeSequenceList(delta);
      stats.index_bytes = serialized_delta.size();
      stats.emitted_delta_index = true;
      PutBlock(out, serialized_delta);
      break;
    }
  }
  PutBlock(out, id_compressed);
  PutBlock(out, mantissa.stream);

  stats.record_bytes = out.size() - record_start;
  stats.id_compressed_bytes = id_compressed.size();
  stats.mantissa_stream_bytes = mantissa.stream.size();
  stats.mantissa_raw_bytes = mantissa.raw_bytes;
  stats.compressible_fraction = mantissa.plan.CompressibleFraction();
  stats.top_byte_frequency_before = TopByteFrequency(split.high);
  stats.top_byte_frequency_after = TopByteFrequency(id_bytes);
  clock.Lap(stats.stage, telemetry::Stage::kSerialize);

  if constexpr (telemetry::kEnabled) {
    PipelineMetrics& metrics = PipelineMetrics::Get();
    metrics.encode_chunks.Increment();
    metrics.encode_input_bytes.Increment(chunk.size());
    metrics.encode_output_bytes.Increment(stats.record_bytes);
    metrics.encode_chunk_bytes.Observe(
        static_cast<double>(stats.record_bytes));
    PublishStageNs(metrics.encode_stage_ns, metrics.encode_stage_seconds,
                   stats.stage);
  }
  return stats;
}

ChunkDecoder::ChunkDecoder(const Codec& solver, Linearization linearization,
                           std::size_t element_width)
    : solver_(solver), linearization_(linearization), width_(element_width) {
  if (width_ != 4 && width_ != 8) {
    throw InvalidArgumentError("ChunkDecoder: unsupported element width");
  }
}

void ChunkDecoder::DecodeChunk(ByteReader& reader, std::uint64_t count,
                               Bytes& out) {
  if (count == 0) {
    throw CorruptStreamError("primacy: bad chunk element count");
  }
  const std::size_t old_size = out.size();
  // Overflow-safe: a tampered count must not wrap the byte extent and
  // shrink the buffer the decode loop then writes past.
  if (count > (std::numeric_limits<std::size_t>::max() - old_size) / width_) {
    throw CorruptStreamError("primacy: chunk element count overflows");
  }
  out.resize(old_size + static_cast<std::size_t>(count) * width_);
  DecodeChunkInto(reader, count, MutableByteSpan(out).subspan(old_size));
}

void ChunkDecoder::AddStageNs(telemetry::Stage stage, std::uint64_t ns) {
  if constexpr (telemetry::kEnabled) {
    if (ns == 0) return;
    stage_[stage] += ns;
    PipelineMetrics::Get()
        .decode_stage_ns[static_cast<std::size_t>(stage)]
        ->Increment(ns);
  } else {
    (void)stage;
    (void)ns;
  }
}

void ChunkDecoder::DecodeChunkInto(ByteReader& reader, std::uint64_t count,
                                   MutableByteSpan out) {
  if (count == 0) {
    throw CorruptStreamError("primacy: bad chunk element count");
  }
  // Division, not multiplication: `count` comes off the wire, and a wrapped
  // count * width_ could alias a small buffer while the merge loop below
  // iterates the unwrapped count.
  if (out.size() % width_ != 0 || out.size() / width_ != count) {
    throw CorruptStreamError("primacy: chunk element count mismatch");
  }
  telemetry::TraceSpan span("primacy.decode_chunk", "elements", count);
  telemetry::StageBreakdown laps;
  telemetry::StageClock clock;
  telemetry::StageScope profile(telemetry::Stage::kFrequency);
  const std::uint8_t index_flag = reader.GetU8();
  if (index_flag == 1) {
    index_ = DeserializeIndex(reader.GetBlock());
  } else if (index_flag == 2) {
    if (!index_.has_value()) {
      throw CorruptStreamError("primacy: delta without a base index");
    }
    index_ = index_->Extended(DeserializeSequenceList(reader.GetBlock()));
  } else if (index_flag != 0 || !index_.has_value()) {
    throw CorruptStreamError("primacy: missing index");
  }
  // Index deserialization restores the frequency-ranked ID table, so it is
  // charged to the frequency stage (its encode-side dual).
  clock.Lap(laps, telemetry::Stage::kFrequency);
  profile.Switch(telemetry::Stage::kSolver);
  const Bytes id_bytes = solver_.Decompress(reader.GetBlock());
  clock.Lap(laps, telemetry::Stage::kSolver);
  if (id_bytes.size() != count * kHighWidth) {
    throw CorruptStreamError("primacy: ID byte count mismatch");
  }
  profile.Switch(telemetry::Stage::kIdMap);
  const Bytes high = MapFromIds(id_bytes, *index_, linearization_);
  clock.Lap(laps, telemetry::Stage::kIdMap);
  profile.Switch(telemetry::Stage::kIsobar);
  const Bytes low = IsobarDecompress(reader.GetBlock(), solver_);
  clock.Lap(laps, telemetry::Stage::kIsobar);
  profile.Switch(telemetry::Stage::kMerge);
  const std::size_t low_width = width_ - kHighWidth;
  if (low.size() != count * low_width) {
    throw CorruptStreamError("primacy: mantissa byte count mismatch");
  }
  // Fused high/low merge + big-endian-rows -> native conversion, writing
  // each element once. The old path materialized the merged row matrix, a
  // native value vector, and a byte copy of it before appending — three
  // full-size temporaries per chunk that this loop eliminates.
  const std::size_t n = static_cast<std::size_t>(count);
  for (std::size_t i = 0; i < n; ++i) {
    const std::byte* hi = high.data() + i * kHighWidth;
    const std::byte* lo = low.data() + i * low_width;
    std::byte* dst = out.data() + i * width_;
    if (width_ == 8) {
      std::uint64_t bits = 0;
      bits = (bits << 8) | static_cast<std::uint64_t>(hi[0]);
      bits = (bits << 8) | static_cast<std::uint64_t>(hi[1]);
      for (std::size_t b = 0; b < 6; ++b) {
        bits = (bits << 8) | static_cast<std::uint64_t>(lo[b]);
      }
      const double value = std::bit_cast<double>(bits);
      std::memcpy(dst, &value, 8);
    } else {
      std::uint32_t bits = 0;
      bits = (bits << 8) | static_cast<std::uint32_t>(hi[0]);
      bits = (bits << 8) | static_cast<std::uint32_t>(hi[1]);
      for (std::size_t b = 0; b < low_width; ++b) {
        bits = (bits << 8) | static_cast<std::uint32_t>(lo[b]);
      }
      const float value = std::bit_cast<float>(bits);
      std::memcpy(dst, &value, 4);
    }
  }
  clock.Lap(laps, telemetry::Stage::kMerge);

  if constexpr (telemetry::kEnabled) {
    stage_.Accumulate(laps);
    PipelineMetrics& metrics = PipelineMetrics::Get();
    metrics.decode_chunks.Increment();
    metrics.decode_output_bytes.Increment(out.size());
    PublishStageNs(metrics.decode_stage_ns, metrics.decode_stage_seconds,
                   laps);
  }
}

}  // namespace primacy
