// Incremental (streaming) PRIMACY interfaces for in-situ use, where a
// simulation produces data in bursts and the compressed checkpoint must be
// emitted without ever materializing the whole input or output:
//
//  * PrimacyStreamWriter::Append accepts arbitrarily-sized batches of
//    values; whole chunks are encoded and handed to the sink as soon as
//    they are full. Finish() flushes the remainder and the stream trailer.
//  * PrimacyStreamReader::NextChunk yields the decoded values one chunk at
//    a time, bounding peak memory at one chunk regardless of stream size.
//
// The produced byte stream differs from PrimacyCompressor's only in how the
// total size is recorded: a one-shot stream stores the byte count in the
// header, while a streaming writer cannot know it up front and stores the
// kStreamingTotal sentinel there and the real count in a trailer.
// PrimacyStreamReader reads both; PrimacyDecompressor requires a one-shot
// stream.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/chunk_pipeline.h"
#include "core/primacy_codec.h"
#include "core/stream_format.h"

namespace primacy {

/// Header total-byte sentinel marking a streamed (unknown-size) stream.
inline constexpr std::uint64_t kStreamingTotal = ~std::uint64_t{0};

class PrimacyStreamWriter {
 public:
  /// `sink` receives the stream bytes in order (header, chunk records,
  /// trailer); it is called from Append/Finish on the caller's thread.
  using Sink = std::function<void(ByteSpan)>;

  explicit PrimacyStreamWriter(Sink sink, PrimacyOptions options = {});

  /// Appends values; must match the options' precision.
  void Append(std::span<const double> values);
  void Append(std::span<const float> values);

  /// Appends raw native-layout bytes (any size; a trailing partial element
  /// is only allowed immediately before Finish()).
  void AppendBytes(ByteSpan data);

  /// Flushes the final partial chunk and writes the trailer. No Append may
  /// follow. Returns the cumulative stats.
  PrimacyStats Finish();

  const PrimacyStats& stats() const { return stats_; }

 private:
  void EncodeBufferedChunks(bool flush_partial);
  void Emit(ByteSpan data);

  Sink sink_;
  PrimacyOptions options_;
  std::shared_ptr<const Codec> solver_;
  ChunkEncoder encoder_;
  Bytes pending_;        // not-yet-encoded input bytes
  /// Cumulative accounting; the per-chunk mean fields hold running sums
  /// until Finish() calls FinalizeChunkStatMeans.
  PrimacyStats stats_;
  bool finished_ = false;
};

class PrimacyStreamReader {
 public:
  /// Reads from an in-memory stream view (the common in-situ case: the
  /// staged buffer); the view must outlive the reader. For v3 streams the
  /// chunk directory is loaded up front and each record is verified against
  /// its checksum before decoding (disable with `verify_checksums` for raw
  /// speed); v1/v2 streams carry no checksums and decode as before.
  explicit PrimacyStreamReader(ByteSpan stream, bool verify_checksums = true);

  /// Element width of the stream (4 or 8).
  std::size_t element_width() const { return header_.width; }

  /// Decodes the next chunk into `out` (appending native-layout bytes).
  /// Returns false when the stream is exhausted — at which point the tail
  /// bytes (if any) have been appended too.
  bool NextChunk(Bytes& out);

  /// Convenience: drain the remaining chunks as doubles.
  std::vector<double> ReadAllDoubles();

  /// Per-stage decode time accumulated over the chunks read so far (zero
  /// when telemetry is off).
  const telemetry::StageBreakdown& stage_breakdown() const;

 private:
  ByteSpan stream_;
  ByteReader reader_;
  internal::StreamHeader header_;
  std::unique_ptr<const Codec> solver_;
  std::unique_ptr<ChunkDecoder> decoder_;
  /// Loaded for one-shot v3 streams when verifying: supplies the per-chunk
  /// record checksums the sequential decode checks against.
  std::optional<internal::ChunkDirectory> directory_;
  std::size_t chunk_index_ = 0;
  std::uint64_t decoded_bytes_ = 0;
  bool verify_ = false;
  bool saw_trailer_ = false;
};

}  // namespace primacy
