#include "core/id_mapper.h"

#include "util/byte_matrix.h"
#include "util/error.h"

namespace primacy {

Bytes MapToIds(ByteSpan high_bytes, const IdIndex& index,
               Linearization linearization) {
  if (high_bytes.size() % 2 != 0) {
    throw InvalidArgumentError("MapToIds: odd byte count");
  }
  Bytes ids(high_bytes.size());
  for (std::size_t i = 0; i < high_bytes.size(); i += 2) {
    const auto sequence = static_cast<std::uint16_t>(
        (static_cast<std::uint32_t>(high_bytes[i]) << 8) |
        static_cast<std::uint32_t>(high_bytes[i + 1]));
    const std::uint32_t id = index.IdOf(sequence);
    if (id == IdIndex::kUnmapped) {
      throw InvalidArgumentError("MapToIds: sequence not in index");
    }
    ids[i] = static_cast<std::byte>(id >> 8);
    ids[i + 1] = static_cast<std::byte>(id & 0xff);
  }
  if (linearization == Linearization::kColumn) {
    return RowToColumn(ids, 2);
  }
  return ids;
}

Bytes MapFromIds(ByteSpan id_bytes, const IdIndex& index,
                 Linearization linearization) {
  if (id_bytes.size() % 2 != 0) {
    throw CorruptStreamError("MapFromIds: odd byte count");
  }
  Bytes rows = linearization == Linearization::kColumn
                   ? ColumnToRow(id_bytes, 2)
                   : ToBytes(id_bytes);
  for (std::size_t i = 0; i < rows.size(); i += 2) {
    const auto id = (static_cast<std::uint32_t>(rows[i]) << 8) |
                    static_cast<std::uint32_t>(rows[i + 1]);
    if (id >= index.size()) {
      throw CorruptStreamError("MapFromIds: ID beyond index");
    }
    const std::uint16_t sequence = index.SequenceOf(id);
    rows[i] = static_cast<std::byte>(sequence >> 8);
    rows[i + 1] = static_cast<std::byte>(sequence & 0xff);
  }
  return rows;
}

}  // namespace primacy
