#include "core/id_mapper.h"

#include "kernels/kernels.h"
#include "util/byte_matrix.h"
#include "util/error.h"

namespace primacy {

// Both directions run through the dispatched lookup kernels, which are
// noexcept and signal a bad value by returning false; the throw sites below
// re-derive the precise error so the exception contract is unchanged.

Bytes MapToIds(ByteSpan high_bytes, const IdIndex& index,
               Linearization linearization) {
  if (high_bytes.size() % 2 != 0) {
    throw InvalidArgumentError("MapToIds: odd byte count");
  }
  Bytes ids(high_bytes.size());
  if (!kernels::Active().map_ids16(high_bytes.data(), high_bytes.size() / 2,
                                   index.ids_table(), ids.data())) {
    throw InvalidArgumentError("MapToIds: sequence not in index");
  }
  if (linearization == Linearization::kColumn) {
    return RowToColumn(ids, 2);
  }
  return ids;
}

Bytes MapFromIds(ByteSpan id_bytes, const IdIndex& index,
                 Linearization linearization) {
  if (id_bytes.size() % 2 != 0) {
    throw CorruptStreamError("MapFromIds: odd byte count");
  }
  Bytes rows = linearization == Linearization::kColumn
                   ? ColumnToRow(id_bytes, 2)
                   : ToBytes(id_bytes);
  // In place: the kernel contract allows out == in (each block is fully
  // loaded before it is stored).
  if (!kernels::Active().unmap_ids16(
          rows.data(), rows.size() / 2, index.sequences_u32().data(),
          static_cast<std::uint32_t>(index.size()), rows.data())) {
    throw CorruptStreamError("MapFromIds: ID beyond index");
  }
  return rows;
}

}  // namespace primacy
