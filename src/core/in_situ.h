// In-situ parallel compression driver: compresses a large double array as
// independent shards across a thread pool, the way each compute node runs
// PRIMACY on its own data while the simulation is resident in memory
// (paper Sections I and II-A). Shards are self-contained PRIMACY streams,
// so decompression can also proceed shard-parallel.
#pragma once

#include <vector>

#include "core/primacy_codec.h"
#include "util/thread_pool.h"

namespace primacy {

struct InSituResult {
  /// One self-contained PRIMACY stream per shard, in input order.
  std::vector<Bytes> shards;
  PrimacyStats totals;

  std::size_t TotalCompressedBytes() const;
};

struct InSituOptions {
  /// Decode-side note: primacy.cache / primacy.block_cache configure the
  /// decoded-block cache. Each decompress call shares one cache instance
  /// across its shard tasks; supply an explicit primacy.block_cache to keep
  /// it warm across calls.
  PrimacyOptions primacy;
  /// Elements per shard; defaults to four chunks' worth.
  std::size_t shard_elements = 4 * (3 * 1024 * 1024 / 8);
  std::size_t threads = 0;  // 0 = hardware concurrency
};

/// Shard-parallel decompression output: the restored array plus aggregated
/// per-shard decode accounting (chunks decoded, index loads, ...).
struct InSituDecodeResult {
  std::vector<double> values;
  PrimacyDecodeStats totals;
};

/// Compresses `values` shard-parallel.
InSituResult InSituCompress(std::span<const double> values,
                            const InSituOptions& options = {});

/// Decompresses shards (in order) back into one array. Shards decode in
/// parallel on the shared pool (`options.threads`; 0 = hardware
/// concurrency, matching InSituCompress).
std::vector<double> InSituDecompress(const std::vector<Bytes>& shards,
                                     const InSituOptions& options = {});

/// As InSituDecompress, but also returns the decode stats summed across
/// shards instead of dropping them.
InSituDecodeResult InSituDecompressWithStats(const std::vector<Bytes>& shards,
                                             const InSituOptions& options = {});

/// Partial restore: decodes elements [first_element, first_element + count)
/// of the sharded array, touching only the shards — and within each shard,
/// via PrimacyDecompressor::DecompressRange, only the chunks — that cover
/// the range. Shards must be v2 (or stored) streams of doubles.
InSituDecodeResult InSituDecompressRange(const std::vector<Bytes>& shards,
                                         std::uint64_t first_element,
                                         std::uint64_t count,
                                         const InSituOptions& options = {});

}  // namespace primacy
