// The ID mapping transform itself: rewriting each element's high-order byte
// pair as its frequency-ranked ID (paper Section II-C), and the byte-level
// linearization choice for the resulting N x 2 ID matrix (Section II-D).
#pragma once

#include "core/frequency.h"
#include "util/bytes.h"

namespace primacy {

/// How the transformed ID matrix is laid out before entropy coding.
enum class Linearization {
  kRow,     // element order: id0_hi id0_lo id1_hi id1_lo ...
  kColumn,  // transposed: all high ID bytes, then all low ID bytes
};

/// Maps row-linearized high-order bytes (N x 2) to ID bytes under `index`,
/// laid out per `linearization`. Big-endian ID bytes: the high byte of the
/// ID — overwhelmingly 0x00 after frequency ranking — comes first.
/// Throws InvalidArgumentError if a byte pair is absent from the index.
Bytes MapToIds(ByteSpan high_bytes, const IdIndex& index,
               Linearization linearization);

/// Exact inverse of MapToIds.
Bytes MapFromIds(ByteSpan id_bytes, const IdIndex& index,
                 Linearization linearization);

}  // namespace primacy
