#include "core/primacy_codec.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "bitstream/byte_io.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "core/chunk_pipeline.h"
#include "core/stream_format.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace primacy {

PrimacyCompressor::PrimacyCompressor(PrimacyOptions options)
    : options_(std::move(options)),
      solver_(internal::ResolveSolver(options_.solver)) {
  if (options_.chunk_bytes < ElementWidth(options_.precision)) {
    throw InvalidArgumentError("PrimacyCompressor: chunk_bytes too small");
  }
}

Bytes PrimacyCompressor::Compress(std::span<const double> values,
                                  PrimacyStats* stats) const {
  if (options_.precision != Precision::kDouble) {
    throw InvalidArgumentError(
        "PrimacyCompressor: double input requires Precision::kDouble");
  }
  return CompressBytes(AsBytes(values), stats);
}

Bytes PrimacyCompressor::Compress(std::span<const float> values,
                                  PrimacyStats* stats) const {
  if (options_.precision != Precision::kSingle) {
    throw InvalidArgumentError(
        "PrimacyCompressor: float input requires Precision::kSingle");
  }
  return CompressBytes(AsBytes(values), stats);
}

Bytes PrimacyCompressor::CompressBytes(ByteSpan data,
                                       PrimacyStats* stats) const {
  const std::size_t width = ElementWidth(options_.precision);
  const std::size_t tail_bytes = data.size() % width;
  const ByteSpan body = data.first(data.size() - tail_bytes);
  const std::size_t chunk_elements = options_.chunk_bytes / width;

  Bytes out;
  internal::WriteStreamHeader(out, options_, data.size());

  PrimacyStats accounting;
  accounting.input_bytes = data.size();
  double freq_before_sum = 0.0;
  double freq_after_sum = 0.0;
  double compressible_fraction_sum = 0.0;

  const std::size_t total_elements = body.size() / width;
  const std::size_t chunk_count =
      total_elements == 0
          ? 0
          : (total_elements + chunk_elements - 1) / chunk_elements;
  std::vector<ChunkRecordStats> chunk_stats(chunk_count);

  const bool parallel = options_.threads != 1 &&
                        options_.index_mode == IndexMode::kPerChunk &&
                        chunk_count > 1;
  if (parallel) {
    // Chunks are independent under kPerChunk indexing: encode them into
    // per-chunk buffers across a pool, then concatenate in order. Each task
    // gets its own encoder and solver instance so no state is shared.
    std::vector<Bytes> records(chunk_count);
    ThreadPool pool(options_.threads);
    pool.ParallelFor(chunk_count, [&](std::size_t i) {
      const std::size_t first = i * chunk_elements;
      const std::size_t count =
          std::min(chunk_elements, total_elements - first);
      const auto solver = CreateCodec(options_.solver);
      ChunkEncoder encoder(options_, *solver);
      chunk_stats[i] = encoder.EncodeChunk(
          body.subspan(first * width, count * width), records[i]);
    });
    for (const Bytes& record : records) AppendBytes(out, record);
  } else {
    ChunkEncoder encoder(options_, *solver_);
    for (std::size_t i = 0; i < chunk_count; ++i) {
      const std::size_t first = i * chunk_elements;
      const std::size_t count =
          std::min(chunk_elements, total_elements - first);
      chunk_stats[i] =
          encoder.EncodeChunk(body.subspan(first * width, count * width), out);
    }
  }

  for (const ChunkRecordStats& cs : chunk_stats) {
    ++accounting.chunks;
    accounting.indexes_emitted += cs.emitted_full_index;
    accounting.delta_indexes += cs.emitted_delta_index;
    accounting.index_bytes += cs.index_bytes;
    accounting.id_compressed_bytes += cs.id_compressed_bytes;
    accounting.mantissa_stream_bytes += cs.mantissa_stream_bytes;
    accounting.mantissa_raw_bytes += cs.mantissa_raw_bytes;
    freq_before_sum += cs.top_byte_frequency_before;
    freq_after_sum += cs.top_byte_frequency_after;
    compressible_fraction_sum += cs.compressible_fraction;
  }

  PutBlock(out, data.subspan(data.size() - tail_bytes, tail_bytes));

  // Whole-stream stored fallback: adversarial inputs (near-unique high-order
  // pairs) would otherwise pay index metadata with no compression to show
  // for it. A stored stream is header + one raw block.
  if (out.size() > data.size() + 64) {
    Bytes stored;
    internal::WriteStreamHeader(stored, options_, data.size(),
                                /*stored=*/true);
    PutBlock(stored, data);
    accounting = PrimacyStats{};
    accounting.input_bytes = data.size();
    out = std::move(stored);
  }

  if (stats != nullptr) {
    accounting.output_bytes = out.size();
    if (accounting.chunks > 0) {
      const auto chunks = static_cast<double>(accounting.chunks);
      accounting.top_byte_frequency_before = freq_before_sum / chunks;
      accounting.top_byte_frequency_after = freq_after_sum / chunks;
      accounting.mean_compressible_fraction =
          compressible_fraction_sum / chunks;
    }
    *stats = accounting;
  }
  return out;
}

PrimacyDecompressor::PrimacyDecompressor(PrimacyOptions options)
    : options_(std::move(options)) {
  RegisterBuiltinCodecs();
}

Bytes PrimacyDecompressor::DecompressBytes(ByteSpan stream) const {
  ByteReader reader(stream);
  const internal::StreamHeader header = internal::ReadStreamHeader(reader);
  if (header.total_bytes == ~std::uint64_t{0}) {
    throw CorruptStreamError(
        "primacy: streamed stream; use PrimacyStreamReader");
  }
  if (header.stored) {
    const ByteSpan raw = reader.GetBlock();
    if (raw.size() != header.total_bytes) {
      throw CorruptStreamError("primacy: stored payload size mismatch");
    }
    return ToBytes(raw);
  }
  const auto solver = CreateCodec(header.solver_name);
  const std::uint64_t total_elements = header.total_bytes / header.width;

  Bytes out;
  out.reserve(std::min<std::uint64_t>(header.total_bytes, 1u << 26));
  ChunkDecoder decoder(*solver, header.linearization, header.width);
  std::uint64_t decoded_elements = 0;
  while (decoded_elements < total_elements) {
    const std::uint64_t count = reader.GetVarint();
    if (count == 0 || decoded_elements + count > total_elements) {
      throw CorruptStreamError("primacy: bad chunk element count");
    }
    decoder.DecodeChunk(reader, count, out);
    decoded_elements += count;
  }
  const ByteSpan tail = reader.GetBlock();
  if (out.size() + tail.size() != header.total_bytes) {
    throw CorruptStreamError("primacy: tail size mismatch");
  }
  AppendBytes(out, tail);
  return out;
}

std::vector<double> PrimacyDecompressor::Decompress(ByteSpan stream) const {
  const Bytes raw = DecompressBytes(stream);
  if (raw.size() % 8 != 0) {
    throw CorruptStreamError("primacy: stream is not a whole double array");
  }
  return FromBytes<double>(raw);
}

std::vector<float> PrimacyDecompressor::DecompressSingle(
    ByteSpan stream) const {
  const Bytes raw = DecompressBytes(stream);
  if (raw.size() % 4 != 0) {
    throw CorruptStreamError("primacy: stream is not a whole float array");
  }
  return FromBytes<float>(raw);
}

PrimacyCodec::PrimacyCodec(PrimacyOptions options)
    : compressor_(options), decompressor_(std::move(options)) {}

Bytes PrimacyCodec::Compress(ByteSpan data) const {
  return compressor_.CompressBytes(data);
}

Bytes PrimacyCodec::Decompress(ByteSpan data) const {
  return decompressor_.DecompressBytes(data);
}

}  // namespace primacy
