#include "core/primacy_codec.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "bitstream/byte_io.h"
#include "compress/registry.h"
#include "core/builtin_codecs.h"
#include "core/chunk_pipeline.h"
#include "core/stream_format.h"
#include "core/streaming.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/checksum.h"
#include "util/error.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace primacy {
namespace {

/// Effective slot count for a threads knob (0 = hardware concurrency:
/// every pool worker plus the calling thread).
std::size_t EffectiveSlots(std::size_t threads_option) {
  return threads_option == 0 ? SharedThreadPool().num_threads() + 1
                             : threads_option;
}

/// Per-chunk element offsets within the decoded output; validates the
/// directory's element total against the header.
std::vector<std::uint64_t> ElementStarts(
    const internal::ChunkDirectory& directory, std::uint64_t total_elements) {
  std::vector<std::uint64_t> starts(directory.chunks.size());
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < directory.chunks.size(); ++i) {
    starts[i] = sum;
    // Overflow-safe running total: a tampered entry may not push the sum
    // past the header's element count (the wrapped sum could otherwise land
    // back on the expected total and drive out-of-bounds output slices).
    if (directory.chunks[i].elements > total_elements - sum) {
      throw CorruptStreamError("primacy: directory element total mismatch");
    }
    sum += directory.chunks[i].elements;
  }
  if (sum != total_elements) {
    throw CorruptStreamError("primacy: directory element total mismatch");
  }
  return starts;
}

/// Re-throws a chunk-local decode failure as CorruptStreamError carrying
/// the chunk index and record byte offset — the context a restart tool
/// needs to localize damage in a checkpoint.
[[noreturn]] void ThrowChunkError(std::size_t chunk, std::uint64_t offset,
                                  const std::string& what) {
  throw CorruptStreamError("primacy: chunk " + std::to_string(chunk) +
                           " (record at byte " + std::to_string(offset) +
                           "): " + what);
}

/// Verifies chunk `c`'s record bytes against its directory checksum (v3
/// streams with verification enabled). Returns true when a checksum was
/// actually checked.
bool VerifyChunkChecksum(ByteSpan record,
                         const internal::ChunkDirectory& directory,
                         std::size_t c, bool verify) {
  if (!verify || !directory.has_checksums) return false;
  if (Xxh64(record) != directory.chunks[c].checksum) {
    ThrowChunkError(c, directory.chunks[c].offset, "checksum mismatch");
  }
  return true;
}

/// View of chunk `c`'s record bytes, bounded by the next record (or the
/// tail block).
ByteSpan RecordSpan(ByteSpan stream, const internal::ChunkDirectory& directory,
                    std::size_t c) {
  const std::uint64_t begin = directory.chunks[c].offset;
  const std::uint64_t end = c + 1 < directory.chunks.size()
                                ? directory.chunks[c + 1].offset
                                : directory.tail_offset;
  return stream.subspan(static_cast<std::size_t>(begin),
                        static_cast<std::size_t>(end - begin));
}

/// Decodes chunk `c` through `decoder` into `out` (exactly the chunk's
/// extent), cross-checking the record's element count against the directory
/// and (v3 + verify) the record bytes against their checksum first. Any
/// decode failure is rethrown with the chunk index and byte offset.
/// Returns true when the record checksum was verified.
bool DecodeDirectoryChunk(ByteSpan stream,
                          const internal::ChunkDirectory& directory,
                          std::size_t c, ChunkDecoder& decoder,
                          MutableByteSpan out, bool verify) {
  const ByteSpan record = RecordSpan(stream, directory, c);
  bool verified = false;
  if constexpr (telemetry::kEnabled) {
    const WallTimer checksum_timer;
    verified = VerifyChunkChecksum(record, directory, c, verify);
    if (verified) {
      decoder.AddStageNs(telemetry::Stage::kChecksum,
                         checksum_timer.ElapsedNs());
    }
  } else {
    verified = VerifyChunkChecksum(record, directory, c, verify);
  }
  try {
    ByteReader reader(record);
    const std::uint64_t count = reader.GetVarint();
    if (count != directory.chunks[c].elements) {
      throw CorruptStreamError("primacy: directory element count mismatch");
    }
    decoder.DecodeChunkInto(reader, count, out);
  } catch (const InternalError&) {
    throw;  // library invariant failure, not stream damage — keep the type
  } catch (const Error& e) {
    ThrowChunkError(c, directory.chunks[c].offset, e.what());
  }
  return verified;
}

/// Reads only the index block of chunk `c`'s record (for range-read index
/// chain resolution), validating the flag against the directory and (v3 +
/// verify) the record checksum.
ByteSpan ReadIndexBlock(ByteSpan stream,
                        const internal::ChunkDirectory& directory,
                        std::size_t c, bool verify) {
  const ByteSpan record = RecordSpan(stream, directory, c);
  VerifyChunkChecksum(record, directory, c, verify);
  try {
    ByteReader reader(record);
    reader.GetVarint();  // element count
    const std::uint8_t flag = reader.GetU8();
    if (flag != directory.chunks[c].index_flag) {
      throw CorruptStreamError("primacy: directory index flag mismatch");
    }
    return reader.GetBlock();
  } catch (const InternalError&) {
    throw;
  } catch (const Error& e) {
    ThrowChunkError(c, directory.chunks[c].offset, e.what());
  }
}

/// Content-derived 64-bit identity of a seekable stream: the stream half of
/// the decoded-block cache key. Hashes the header bytes plus the directory
/// payload and footer — for v3 the directory embeds every record's content
/// checksum, so the identity is a function of all payload bytes. v2
/// directories carry only structure (offsets/counts/flags), so a bounded
/// sample of each record's bytes is mixed in as well. Streams with equal
/// content hash equal (correct: their decoded chunks are identical);
/// distinct streams colliding requires a 64-bit XXH64 collision.
std::uint64_t StreamCacheIdentity(ByteSpan stream,
                                  const internal::ChunkDirectory& directory,
                                  std::size_t chunks_begin) {
  Xxh64State state;
  state.Update(stream.first(chunks_begin));
  state.Update(
      stream.subspan(static_cast<std::size_t>(directory.directory_offset)));
  if (!directory.has_checksums) {
    for (std::size_t c = 0; c < directory.chunks.size(); ++c) {
      const ByteSpan record = RecordSpan(stream, directory, c);
      const std::size_t sample = std::min<std::size_t>(record.size(), 16);
      state.Update(record.first(sample));
      state.Update(record.last(sample));
    }
  }
  return state.Digest();
}

/// Seeds `decoder` with the cross-chunk index state chunk `c` decodes
/// under: a no-op for a full-index chunk, otherwise the
/// kReuseWhenCorrelated chain is resolved — walk back to the nearest full
/// index, then replay the delta extensions up to (but not including) `c`.
/// Only index blocks are read (counted in accounting.index_loads); no chunk
/// payload is decoded.
void PrimeDecoderIndex(ByteSpan stream,
                       const internal::ChunkDirectory& directory,
                       std::size_t c, ChunkDecoder& decoder, bool verify,
                       PrimacyDecodeStats& accounting) {
  if (directory.chunks[c].index_flag == 1) return;
  std::size_t base = c;
  while (base > 0 && directory.chunks[base].index_flag != 1) --base;
  if (directory.chunks[base].index_flag != 1) {
    ThrowChunkError(c, directory.chunks[c].offset,
                    "no full index precedes chunk");
  }
  IdIndex index =
      DeserializeIndex(ReadIndexBlock(stream, directory, base, verify));
  ++accounting.index_loads;
  for (std::size_t i = base + 1; i < c; ++i) {
    if (directory.chunks[i].index_flag == 2) {
      index = index.Extended(DeserializeSequenceList(
          ReadIndexBlock(stream, directory, i, verify)));
      ++accounting.index_loads;
    }
  }
  decoder.SetIndex(std::move(index));
}

/// Sentinel for CachedChunkReader::state_for: the decoder's index state is
/// not known to match any chunk.
constexpr std::size_t kNoIndexState = static_cast<std::size_t>(-1);

/// Decodes directory chunks through the decoded-block cache: a hit is a
/// memcpy of the cached bytes, a miss decodes and inserts the result. With
/// a null cache this degenerates to exactly the uncached sequential decode
/// (every chunk a plain DecodeDirectoryChunk, no lookups, no priming beyond
/// what the caller's first chunk needs).
///
/// The subtlety is IndexMode::kReuseWhenCorrelated: skipping a chunk whose
/// record would have (re)built the decoder's index (flag 1 or 2) leaves the
/// decoder's cross-chunk state stale for the next miss. `state_for` tracks
/// which chunk the state is currently valid for; a miss on a reuse/delta
/// chunk whose state is stale re-primes via PrimeDecoderIndex first.
struct CachedChunkReader {
  ByteSpan stream;
  const internal::ChunkDirectory& directory;
  DecodedBlockCache* cache;  // null = uncached
  std::uint64_t stream_id;
  bool verify;
  std::size_t state_for;  // chunk the decoder's index state decodes

  /// Decodes chunk `c` into `out`, which must be exactly the chunk's
  /// decoded extent. Returns true when the record checksum was verified
  /// (always false for a cache hit — the bytes never re-enter the decoder).
  bool DecodeChunk(std::size_t c, ChunkDecoder& decoder, MutableByteSpan out,
                   PrimacyDecodeStats& accounting) {
    if (cache != nullptr) {
      if (DecodedBlockCache::Handle handle = cache->Lookup(stream_id, c)) {
        if (handle.data().size() != out.size()) {
          ThrowChunkError(c, directory.chunks[c].offset,
                          "cached chunk size mismatch");
        }
        std::memcpy(out.data(), handle.data().data(), out.size());
        ++accounting.cache_hits;
        if (directory.chunks[c].index_flag == 0) {
          // A reuse chunk leaves the index untouched: state valid for c is
          // equally valid for c + 1. Full/delta chunks rebuild state their
          // record carries — skipping them leaves the decoder stale.
          if (state_for == c) state_for = c + 1;
        } else {
          state_for = kNoIndexState;
        }
        return false;
      }
      ++accounting.cache_misses;
    }
    if (directory.chunks[c].index_flag != 1 && state_for != c) {
      PrimeDecoderIndex(stream, directory, c, decoder, verify, accounting);
    }
    const bool verified =
        DecodeDirectoryChunk(stream, directory, c, decoder, out, verify);
    state_for = c + 1;
    ++accounting.chunks_decoded;
    if (cache != nullptr) cache->Insert(stream_id, c, ToBytes(ByteSpan(out)));
    return verified;
  }
};

/// Best-effort adjacent-chunk prefetch after a range read: decodes up to
/// `prefetch_chunks` chunks past `clast` on the shared pool and inserts
/// them into `cache`, so a sequential scan's next range call finds them
/// warm. Only full-index chunks qualify (reuse/delta chunks would need the
/// caller's chain state), already-resident chunks are skipped, and each
/// task owns a copy of its record bytes — the caller's stream span may
/// dangle once the range call returns. Failures (corrupt record, solver
/// error) are swallowed: the chunk just stays cold, and the demand path
/// re-verifies and reports there.
void PrefetchAdjacentChunks(ByteSpan stream,
                            const internal::ChunkDirectory& directory,
                            const internal::StreamHeader& header,
                            const std::shared_ptr<DecodedBlockCache>& cache,
                            std::uint64_t stream_id, std::size_t clast,
                            std::size_t prefetch_chunks, bool verify,
                            PrimacyDecodeStats& accounting) {
  const std::size_t after = directory.chunks.size() - clast - 1;
  const std::size_t limit = clast + 1 + std::min(prefetch_chunks, after);
  for (std::size_t c = clast + 1; c < limit; ++c) {
    if (directory.chunks[c].index_flag != 1) continue;
    if (cache->Contains(stream_id, c)) continue;
    Bytes record = ToBytes(RecordSpan(stream, directory, c));
    SharedThreadPool().Submit(
        [record = std::move(record), cache, stream_id, c,
         solver_name = header.solver_name,
         linearization = header.linearization, width = header.width,
         elements = directory.chunks[c].elements,
         checksum = directory.chunks[c].checksum, verify] {
          try {
            if (verify && Xxh64(record) != checksum) return;
            const auto solver = CreateCodec(solver_name);
            ChunkDecoder decoder(*solver, linearization, width);
            ByteReader reader(record);
            const std::uint64_t n = reader.GetVarint();
            if (n != elements) return;
            Bytes decoded(static_cast<std::size_t>(n * width));
            decoder.DecodeChunkInto(reader, n, decoded);
            cache->Insert(stream_id, c, std::move(decoded));
          } catch (...) {
            // Best effort by contract; the demand path surfaces errors.
          }
        });
    ++accounting.prefetch_issued;
    if constexpr (telemetry::kEnabled) {
      static telemetry::Counter& prefetch_total =
          telemetry::MetricsRegistry::Global().GetCounter(
              "primacy_cache_prefetch_total");
      prefetch_total.Increment();
    }
  }
}

/// The tail block of a v2 stream (bytes beyond a whole number of elements),
/// which sits between the last chunk record and the directory.
ByteSpan ReadV2Tail(ByteSpan stream, const internal::ChunkDirectory& directory,
                    std::uint64_t expected_element_bytes,
                    std::uint64_t total_bytes) {
  ByteReader reader(stream.subspan(
      static_cast<std::size_t>(directory.tail_offset),
      static_cast<std::size_t>(directory.directory_offset -
                               directory.tail_offset)));
  const ByteSpan tail = reader.GetBlock();
  if (!reader.AtEnd()) {
    throw CorruptStreamError("primacy: bytes between tail and directory");
  }
  if (expected_element_bytes + tail.size() != total_bytes) {
    throw CorruptStreamError("primacy: tail size mismatch");
  }
  return tail;
}

/// Maximal runs of chunks starting at a full index: within a group chunks
/// depend on the running index state (flags 0/2); across groups they are
/// independent, which is the unit of parallel decode. Under kPerChunk every
/// chunk is flag 1 and thus its own group.
std::vector<std::pair<std::size_t, std::size_t>> IndexGroups(
    const internal::ChunkDirectory& directory) {
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t c = 0; c < directory.chunks.size(); ++c) {
    if (directory.chunks[c].index_flag == 1 || groups.empty()) {
      groups.emplace_back(c, 1);
    } else {
      ++groups.back().second;
    }
  }
  return groups;
}

/// Directory-driven decode of a v2/v3 stream body (everything but the
/// header). For v3 with verification on, the header/tail checksum is
/// checked up front and every chunk record against its directory checksum
/// before decoding.
Bytes DecodeSeekable(ByteSpan stream, const internal::StreamHeader& header,
                     std::size_t chunks_begin, const PrimacyOptions& options,
                     DecodedBlockCache* cache,
                     PrimacyDecodeStats& accounting) {
  const std::size_t threads_option = options.threads;
  const internal::ChunkDirectory directory =
      internal::ReadChunkDirectory(stream, chunks_begin, header.version);
  accounting.used_directory = true;
  const bool verify = options.verify_checksums && directory.has_checksums;
  if (verify &&
      internal::ComputeHeaderTailChecksum(stream, directory, chunks_begin) !=
          directory.header_tail_checksum) {
    throw CorruptStreamError("primacy: header/tail checksum mismatch");
  }
  const std::uint64_t total_elements = header.total_bytes / header.width;
  const std::vector<std::uint64_t> starts =
      ElementStarts(directory, total_elements);
  const std::uint64_t element_bytes = total_elements * header.width;
  const ByteSpan tail =
      ReadV2Tail(stream, directory, element_bytes, header.total_bytes);
  const std::uint64_t stream_id =
      cache != nullptr ? StreamCacheIdentity(stream, directory, chunks_begin)
                       : 0;

  Bytes out(static_cast<std::size_t>(header.total_bytes));
  const auto groups = IndexGroups(directory);
  // Per-group accounting (chunks decoded/verified, cache hits/misses),
  // folded in after the (possibly parallel) decode — workers never touch
  // shared counters.
  std::vector<PrimacyDecodeStats> per_group(groups.size());
  const auto decode_group = [&](ChunkDecoder& decoder, std::size_t g) {
    const auto [first, n] = groups[g];
    // state_for starts at the group's first chunk: groups begin at a full
    // index (or chunk 0), so the decoder needs no priming there, and a
    // corrupt flag-0 chunk 0 must fail in the decoder as it always has.
    CachedChunkReader chunks{stream, directory, cache,
                             stream_id, verify, first};
    for (std::size_t c = first; c < first + n; ++c) {
      per_group[g].chunks_verified += chunks.DecodeChunk(
          c, decoder,
          MutableByteSpan(out).subspan(
              static_cast<std::size_t>(starts[c] * header.width),
              static_cast<std::size_t>(directory.chunks[c].elements *
                                       header.width)),
          per_group[g]);
    }
  };

  const std::size_t slots =
      std::min(EffectiveSlots(threads_option), std::max<std::size_t>(
                                                   groups.size(), 1));
  if (slots > 1 && groups.size() > 1) {
    // One solver + decoder per slot, reused across that slot's groups
    // instead of constructed per chunk. Slots never run two groups at once,
    // so the per-slot state needs no locking.
    struct Slot {
      std::unique_ptr<const Codec> solver;
      std::optional<ChunkDecoder> decoder;
    };
    std::vector<Slot> slot_state(slots);
    SharedThreadPool().ParallelForSlots(
        groups.size(), threads_option, [&](std::size_t slot, std::size_t g) {
          Slot& s = slot_state[slot];
          if (!s.decoder) {
            s.solver = CreateCodec(header.solver_name);
            s.decoder.emplace(*s.solver, header.linearization, header.width);
          }
          decode_group(*s.decoder, g);
        });
    accounting.threads_used = slots;
    // Stage times fold after the barrier — workers never share counters.
    for (const Slot& s : slot_state) {
      if (s.decoder) accounting.stage.Accumulate(s.decoder->stage_breakdown());
    }
  } else {
    const auto solver = CreateCodec(header.solver_name);
    ChunkDecoder decoder(*solver, header.linearization, header.width);
    for (std::size_t g = 0; g < groups.size(); ++g) decode_group(decoder, g);
    accounting.stage.Accumulate(decoder.stage_breakdown());
  }
  for (const PrimacyDecodeStats& g : per_group) {
    accounting.chunks_decoded += g.chunks_decoded;
    accounting.chunks_verified += g.chunks_verified;
    accounting.cache_hits += g.cache_hits;
    accounting.cache_misses += g.cache_misses;
    accounting.index_loads += g.index_loads;
  }

  if (!tail.empty()) {
    std::memcpy(out.data() + element_bytes, tail.data(), tail.size());
  }
  return out;
}

}  // namespace

PrimacyCompressor::PrimacyCompressor(PrimacyOptions options)
    : options_(std::move(options)),
      solver_(internal::ResolveSolver(options_.solver)) {
  if (options_.chunk_bytes < ElementWidth(options_.precision)) {
    throw InvalidArgumentError("PrimacyCompressor: chunk_bytes too small");
  }
}

Bytes PrimacyCompressor::Compress(std::span<const double> values,
                                  PrimacyStats* stats) const {
  if (options_.precision != Precision::kDouble) {
    throw InvalidArgumentError(
        "PrimacyCompressor: double input requires Precision::kDouble");
  }
  return CompressBytes(AsBytes(values), stats);
}

Bytes PrimacyCompressor::Compress(std::span<const float> values,
                                  PrimacyStats* stats) const {
  if (options_.precision != Precision::kSingle) {
    throw InvalidArgumentError(
        "PrimacyCompressor: float input requires Precision::kSingle");
  }
  return CompressBytes(AsBytes(values), stats);
}

Bytes PrimacyCompressor::CompressBytes(ByteSpan data,
                                       PrimacyStats* stats) const {
  return CompressBytesImpl(data, /*reuse=*/nullptr, stats);
}

Bytes PrimacyCompressor::CompressBytesWith(ChunkEncoder& encoder,
                                           ByteSpan data,
                                           PrimacyStats* stats) const {
  return CompressBytesImpl(data, &encoder, stats);
}

Bytes PrimacyCompressor::CompressBytesImpl(ByteSpan data, ChunkEncoder* reuse,
                                           PrimacyStats* stats) const {
  telemetry::TraceSpan span("primacy.compress", "bytes",
                            static_cast<std::uint64_t>(data.size()));
  const std::size_t width = ElementWidth(options_.precision);
  const std::size_t tail_bytes = data.size() % width;
  const ByteSpan body = data.first(data.size() - tail_bytes);
  const std::size_t chunk_elements = options_.chunk_bytes / width;

  Bytes out;
  internal::WriteStreamHeader(out, options_, data.size());

  PrimacyStats accounting;
  accounting.input_bytes = data.size();

  const std::size_t total_elements = body.size() / width;
  const std::size_t chunk_count =
      total_elements == 0
          ? 0
          : (total_elements + chunk_elements - 1) / chunk_elements;
  std::vector<ChunkRecordStats> chunk_stats(chunk_count);
  internal::ChunkDirectory directory;
  directory.chunks.resize(chunk_count);

  // A caller-supplied encoder pins the serial path: reuse exists to keep
  // one worker's scratch hot, and its output must stay byte-identical to a
  // fresh serial encode.
  const bool parallel = reuse == nullptr && options_.threads != 1 &&
                        options_.index_mode == IndexMode::kPerChunk &&
                        chunk_count > 1;
  if (parallel) {
    // Chunks are independent under kPerChunk indexing: encode them into
    // per-chunk buffers across the shared pool, then concatenate in order.
    // Each *slot* (not each chunk) owns a solver + encoder instance, reused
    // for every chunk that slot claims.
    std::vector<Bytes> records(chunk_count);
    struct Slot {
      std::unique_ptr<const Codec> solver;
      std::optional<ChunkEncoder> encoder;
    };
    std::vector<Slot> slots(
        std::min(EffectiveSlots(options_.threads), chunk_count));
    SharedThreadPool().ParallelForSlots(
        chunk_count, options_.threads, [&](std::size_t slot, std::size_t i) {
          Slot& s = slots[slot];
          if (!s.encoder) {
            s.solver = CreateCodec(options_.solver);
            s.encoder.emplace(options_, *s.solver);
          }
          const std::size_t first = i * chunk_elements;
          const std::size_t count =
              std::min(chunk_elements, total_elements - first);
          chunk_stats[i] = s.encoder->EncodeChunk(
              body.subspan(first * width, count * width), records[i]);
        });
    for (std::size_t i = 0; i < chunk_count; ++i) {
      directory.chunks[i].offset = out.size();
      AppendBytes(out, records[i]);
    }
  } else {
    std::optional<ChunkEncoder> local;
    ChunkEncoder* encoder = reuse;
    if (encoder == nullptr) {
      local.emplace(options_, *solver_);
      encoder = &*local;
    } else {
      encoder->Reset();  // clear cross-chunk index state from prior streams
    }
    for (std::size_t i = 0; i < chunk_count; ++i) {
      const std::size_t first = i * chunk_elements;
      const std::size_t count =
          std::min(chunk_elements, total_elements - first);
      directory.chunks[i].offset = out.size();
      chunk_stats[i] =
          encoder->EncodeChunk(body.subspan(first * width, count * width), out);
    }
  }

  for (std::size_t i = 0; i < chunk_count; ++i) {
    const ChunkRecordStats& cs = chunk_stats[i];
    directory.chunks[i].elements = cs.elements;
    directory.chunks[i].index_flag =
        cs.emitted_full_index ? 1 : (cs.emitted_delta_index ? 2 : 0);
    AccumulateChunkStats(accounting, cs);
  }
  FinalizeChunkStatMeans(accounting);

  directory.tail_offset = out.size();
  PutBlock(out, data.subspan(data.size() - tail_bytes, tail_bytes));
  internal::AppendChunkDirectory(out, directory);

  // Whole-stream stored fallback: adversarial inputs (near-unique high-order
  // pairs) would otherwise pay index metadata with no compression to show
  // for it. A stored stream is header + one raw block + a trailing checksum
  // of both (no directory: the payload is already randomly accessible).
  if (out.size() > data.size() + 64) {
    Bytes stored;
    internal::WriteStreamHeader(stored, options_, data.size(),
                                /*stored=*/true);
    PutBlock(stored, data);
    PutU64(stored, Xxh64(stored));
    accounting = PrimacyStats{};
    accounting.input_bytes = data.size();
    out = std::move(stored);
  }

  if (stats != nullptr) {
    accounting.output_bytes = out.size();
    *stats = accounting;
  }
  return out;
}

PrimacyDecompressor::PrimacyDecompressor(PrimacyOptions options)
    : options_(std::move(options)),
      cache_(options_.block_cache != nullptr ? options_.block_cache
                                             : MakeBlockCache(options_.cache)) {
  RegisterBuiltinCodecs();
}

Bytes PrimacyDecompressor::DecompressBytes(ByteSpan stream,
                                           PrimacyDecodeStats* stats) const {
  telemetry::TraceSpan span("primacy.decompress", "bytes",
                            static_cast<std::uint64_t>(stream.size()));
  PrimacyDecodeStats accounting;
  ByteReader reader(stream);
  const internal::StreamHeader header = internal::ReadStreamHeader(reader);
  if (header.total_bytes == ~std::uint64_t{0}) {
    throw CorruptStreamError(
        "primacy: streamed stream; use PrimacyStreamReader");
  }
  Bytes out;
  if (header.stored) {
    const ByteSpan raw = reader.GetBlock();
    if (raw.size() != header.total_bytes) {
      throw CorruptStreamError("primacy: stored payload size mismatch");
    }
    if (header.version >= internal::kFormatVersion3) {
      const std::size_t covered = reader.Offset();
      const std::uint64_t checksum = reader.GetU64();
      if (options_.verify_checksums &&
          Xxh64(stream.first(covered)) != checksum) {
        throw CorruptStreamError("primacy: stored stream checksum mismatch");
      }
    }
    out = ToBytes(raw);
  } else if (header.version >= internal::kFormatVersion2) {
    out = DecodeSeekable(stream, header, reader.Offset(), options_,
                         cache_.get(), accounting);
  } else {
    const auto solver = CreateCodec(header.solver_name);
    const std::uint64_t total_elements = header.total_bytes / header.width;
    out.reserve(std::min<std::uint64_t>(header.total_bytes, 1u << 26));
    ChunkDecoder decoder(*solver, header.linearization, header.width);
    std::uint64_t decoded_elements = 0;
    while (decoded_elements < total_elements) {
      const std::size_t record_offset = reader.Offset();
      try {
        const std::uint64_t count = reader.GetVarint();
        if (count == 0 || decoded_elements + count > total_elements) {
          throw CorruptStreamError("primacy: bad chunk element count");
        }
        decoder.DecodeChunk(reader, count, out);
        decoded_elements += count;
      } catch (const InternalError&) {
        throw;
      } catch (const Error& e) {
        ThrowChunkError(accounting.chunks_decoded, record_offset, e.what());
      }
      ++accounting.chunks_decoded;
    }
    accounting.stage.Accumulate(decoder.stage_breakdown());
    const ByteSpan tail = reader.GetBlock();
    if (out.size() + tail.size() != header.total_bytes) {
      throw CorruptStreamError("primacy: tail size mismatch");
    }
    AppendBytes(out, tail);
  }
  if (stats != nullptr) {
    accounting.output_bytes = out.size();
    *stats = accounting;
  }
  return out;
}

std::vector<double> PrimacyDecompressor::Decompress(
    ByteSpan stream, PrimacyDecodeStats* stats) const {
  const Bytes raw = DecompressBytes(stream, stats);
  if (raw.size() % 8 != 0) {
    throw CorruptStreamError("primacy: stream is not a whole double array");
  }
  return FromBytes<double>(raw);
}

std::vector<float> PrimacyDecompressor::DecompressSingle(
    ByteSpan stream, PrimacyDecodeStats* stats) const {
  const Bytes raw = DecompressBytes(stream, stats);
  if (raw.size() % 4 != 0) {
    throw CorruptStreamError("primacy: stream is not a whole float array");
  }
  return FromBytes<float>(raw);
}

Bytes PrimacyDecompressor::DecompressRangeImpl(ByteSpan stream,
                                               std::uint64_t first_element,
                                               std::uint64_t count,
                                               std::size_t expected_width,
                                               PrimacyDecodeStats* stats) const {
  telemetry::TraceSpan span("primacy.range_read", "elements", count);
  PrimacyDecodeStats accounting;
  ByteReader reader(stream);
  const internal::StreamHeader header = internal::ReadStreamHeader(reader);
  if (header.total_bytes == ~std::uint64_t{0}) {
    throw CorruptStreamError(
        "primacy: streamed stream; use PrimacyStreamReader");
  }
  if (expected_width != 0 && header.width != expected_width) {
    throw InvalidArgumentError(
        "primacy: stream element width does not match the requested type");
  }
  const std::uint64_t width = header.width;
  const std::uint64_t total_elements = header.total_bytes / width;
  if (first_element > total_elements ||
      count > total_elements - first_element) {
    throw InvalidArgumentError("primacy: element range out of bounds");
  }
  const auto finish = [&](Bytes result) {
    if (stats != nullptr) {
      accounting.output_bytes = result.size();
      *stats = accounting;
    }
    return result;
  };
  if (count == 0) return finish(Bytes{});

  if (header.stored) {
    const ByteSpan raw = reader.GetBlock();
    if (raw.size() != header.total_bytes) {
      throw CorruptStreamError("primacy: stored payload size mismatch");
    }
    return finish(ToBytes(
        raw.subspan(static_cast<std::size_t>(first_element * width),
                    static_cast<std::size_t>(count * width))));
  }
  if (header.version < internal::kFormatVersion2) {
    throw InvalidArgumentError(
        "primacy: DecompressRange requires a v2+ stream with a chunk "
        "directory (v1 streams decode sequentially only)");
  }

  const internal::ChunkDirectory directory =
      internal::ReadChunkDirectory(stream, reader.Offset(), header.version);
  accounting.used_directory = true;
  const bool verify = options_.verify_checksums && directory.has_checksums;
  // The header and tail block are small; verifying them keeps every byte a
  // range read depends on covered without hashing untouched chunk records.
  if (verify && internal::ComputeHeaderTailChecksum(stream, directory,
                                                    reader.Offset()) !=
                    directory.header_tail_checksum) {
    throw CorruptStreamError("primacy: header/tail checksum mismatch");
  }
  const std::vector<std::uint64_t> starts =
      ElementStarts(directory, total_elements);
  // total_elements >= count > 0, so there is at least one chunk.
  const auto chunk_of = [&](std::uint64_t element) {
    return static_cast<std::size_t>(
        std::upper_bound(starts.begin(), starts.end(), element) -
        starts.begin() - 1);
  };
  const std::size_t cfirst = chunk_of(first_element);
  const std::size_t clast = chunk_of(first_element + count - 1);
  const std::uint64_t stream_id =
      cache_ != nullptr ? StreamCacheIdentity(stream, directory,
                                              reader.Offset())
                        : 0;

  const auto solver = CreateCodec(header.solver_name);
  ChunkDecoder decoder(*solver, header.linearization, header.width);
  // state_for starts unknown: the first decoded chunk primes the decoder's
  // index chain (a no-op when it carries a full index).
  CachedChunkReader chunks{stream,    directory, cache_.get(),
                           stream_id, verify,    kNoIndexState};

  Bytes result(static_cast<std::size_t>(count * width));
  Bytes scratch;
  for (std::size_t c = cfirst; c <= clast; ++c) {
    const std::uint64_t chunk_first = starts[c];
    const std::uint64_t chunk_count = directory.chunks[c].elements;
    const bool fully_inside = chunk_first >= first_element &&
                              chunk_first + chunk_count <=
                                  first_element + count;
    if (fully_inside) {
      accounting.chunks_verified += chunks.DecodeChunk(
          c, decoder,
          MutableByteSpan(result).subspan(
              static_cast<std::size_t>((chunk_first - first_element) * width),
              static_cast<std::size_t>(chunk_count * width)),
          accounting);
    } else {
      scratch.resize(static_cast<std::size_t>(chunk_count * width));
      accounting.chunks_verified +=
          chunks.DecodeChunk(c, decoder, scratch, accounting);
      const std::uint64_t overlap_first =
          std::max(chunk_first, first_element);
      const std::uint64_t overlap_end =
          std::min(chunk_first + chunk_count, first_element + count);
      std::memcpy(
          result.data() + (overlap_first - first_element) * width,
          scratch.data() + (overlap_first - chunk_first) * width,
          static_cast<std::size_t>((overlap_end - overlap_first) * width));
    }
  }
  accounting.stage.Accumulate(decoder.stage_breakdown());
  if (cache_ != nullptr && options_.cache.prefetch_chunks > 0) {
    PrefetchAdjacentChunks(stream, directory, header, cache_, stream_id,
                           clast, options_.cache.prefetch_chunks, verify,
                           accounting);
  }
  return finish(std::move(result));
}

Bytes PrimacyDecompressor::DecompressBytesRange(
    ByteSpan stream, std::uint64_t first_element, std::uint64_t count,
    PrimacyDecodeStats* stats) const {
  return DecompressRangeImpl(stream, first_element, count, /*expected_width=*/0,
                             stats);
}

std::vector<double> PrimacyDecompressor::DecompressRange(
    ByteSpan stream, std::uint64_t first_element, std::uint64_t count,
    PrimacyDecodeStats* stats) const {
  return FromBytes<double>(
      DecompressRangeImpl(stream, first_element, count, 8, stats));
}

std::vector<float> PrimacyDecompressor::DecompressRangeSingle(
    ByteSpan stream, std::uint64_t first_element, std::uint64_t count,
    PrimacyDecodeStats* stats) const {
  return FromBytes<float>(
      DecompressRangeImpl(stream, first_element, count, 4, stats));
}

StreamVerifyResult VerifyStream(ByteSpan stream) {
  StreamVerifyResult result;
  try {
    ByteReader reader(stream);
    const internal::StreamHeader header = internal::ReadStreamHeader(reader);
    result.version = header.version;
    if (header.stored) {
      const ByteSpan raw = reader.GetBlock();
      if (raw.size() != header.total_bytes) {
        throw CorruptStreamError("primacy: stored payload size mismatch");
      }
      if (header.version >= internal::kFormatVersion3) {
        result.has_checksums = true;
        const std::size_t covered = reader.Offset();
        if (Xxh64(stream.first(covered)) != reader.GetU64()) {
          throw CorruptStreamError("primacy: stored stream checksum mismatch");
        }
      }
      result.ok = true;
      return result;
    }
    if (header.version >= internal::kFormatVersion3 &&
        header.total_bytes != kStreamingTotal) {
      // Hash-only pass: every byte before the footer is covered by a
      // checksum, so no decompression is needed.
      result.has_checksums = true;
      const std::size_t chunks_begin = reader.Offset();
      const internal::ChunkDirectory directory =
          internal::ReadChunkDirectory(stream, chunks_begin, header.version);
      (void)ElementStarts(directory, header.total_bytes / header.width);
      if (internal::ComputeHeaderTailChecksum(stream, directory,
                                              chunks_begin) !=
          directory.header_tail_checksum) {
        throw CorruptStreamError("primacy: header/tail checksum mismatch");
      }
      for (std::size_t c = 0; c < directory.chunks.size(); ++c) {
        VerifyChunkChecksum(RecordSpan(stream, directory, c), directory, c,
                            /*verify=*/true);
        ++result.chunks_checked;
      }
      result.ok = true;
      return result;
    }
    if (header.total_bytes == kStreamingTotal) {
      // Streamed v1: sequential structural decode, one chunk resident.
      PrimacyStreamReader stream_reader(stream);
      Bytes sink;
      while (stream_reader.NextChunk(sink)) {
        sink.clear();
        ++result.chunks_checked;
      }
    } else {
      // v1/v2 one-shot: no checksums to hash, so the only integrity signal
      // is a clean full decode.
      PrimacyDecodeStats stats;
      PrimacyDecompressor().DecompressBytes(stream, &stats);
      result.chunks_checked = stats.chunks_decoded;
    }
    result.ok = true;
  } catch (const Error& e) {
    result.error = e.what();
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

PrimacyCodec::PrimacyCodec(PrimacyOptions options)
    : compressor_(options), decompressor_(std::move(options)) {}

Bytes PrimacyCodec::Compress(ByteSpan data) const {
  return compressor_.CompressBytes(data);
}

Bytes PrimacyCodec::Decompress(ByteSpan data) const {
  return decompressor_.DecompressBytes(data);
}

}  // namespace primacy
