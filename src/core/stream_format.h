// PRIMACY stream header framing shared by the one-shot codec and the
// streaming writer/reader, plus the v2/v3 seekable chunk directory. Internal
// API (namespace primacy::internal).
//
// Version history:
//   v1 — header, chunk records, tail block. Decoding is a sequential scan.
//   v2 — identical payload, then a chunk directory (per-chunk record byte
//        offset, element count, index flag) and a fixed-size footer locating
//        it, so a reader can jump to any chunk without scanning.
//   v3 — v2 plus integrity data: a 64-bit XXH64 checksum per chunk record
//        (carried in the directory entry), a checksum of the header + tail
//        block, and a checksum of the directory payload itself in the
//        footer. Every byte before the footer is covered by exactly one
//        checksum, so any single flipped bit is detected, and a range read
//        can verify just the chunks it touches. One-shot streams are
//        written as v3; the streaming writer still emits v1 (it never holds
//        the whole stream, and its reader is sequential by construction).
//        Readers accept all three versions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bitstream/byte_io.h"
#include "compress/codec.h"
#include "core/primacy_codec.h"

namespace primacy::internal {

inline constexpr std::uint8_t kFormatVersion1 = 1;
inline constexpr std::uint8_t kFormatVersion2 = 2;
inline constexpr std::uint8_t kFormatVersion3 = 3;

/// Trailing checksum of a v3 stored-fallback stream (XXH64 of every
/// preceding byte); stored streams have no directory to carry one.
inline constexpr std::size_t kStoredChecksumBytes = 8;

struct StreamHeader {
  std::uint8_t version = kFormatVersion3;
  Linearization linearization = Linearization::kColumn;
  bool stored = false;  // whole-stream raw fallback (adversarial input)
  std::size_t width = 8;
  std::string solver_name;
  std::uint64_t total_bytes = 0;
};

/// One chunk's directory entry: where its record starts, how many elements
/// it decodes to, its index flag (0 = reuse, 1 = full index, 2 = delta),
/// and — v3 — the XXH64 of its record bytes, so a reader can plan parallel
/// decode groups, range reads, and integrity checks from the directory
/// alone.
struct ChunkDirectoryEntry {
  std::uint64_t offset = 0;    // record start, absolute from stream start
  std::uint64_t elements = 0;  // element count the record decodes to
  std::uint8_t index_flag = 0;
  std::uint64_t checksum = 0;  // XXH64 of the record bytes (v3 only)
};

struct ChunkDirectory {
  std::vector<ChunkDirectoryEntry> chunks;
  /// Absolute offset of the tail block (= end of the last chunk record).
  std::uint64_t tail_offset = 0;
  /// Absolute offset of the directory payload (= end of the tail block).
  /// Filled by ReadChunkDirectory; ignored by AppendChunkDirectory.
  std::uint64_t directory_offset = 0;
  /// True for v3 directories: entry checksums and header_tail_checksum are
  /// populated.
  bool has_checksums = false;
  /// XXH64 of the stream header bytes followed by the tail-block bytes —
  /// everything before the footer that the per-chunk checksums do not cover
  /// (v3 only). Computed by AppendChunkDirectory.
  std::uint64_t header_tail_checksum = 0;
};

/// Appends the stream header: magic, version, flags (bit 0 = column
/// linearization, bit 1 = stored fallback), element width, solver name,
/// total byte count.
void WriteStreamHeader(Bytes& out, const PrimacyOptions& options,
                       std::uint64_t total_bytes, bool stored = false,
                       std::uint8_t version = kFormatVersion3);

/// Parses and validates a stream header (including solver availability).
/// Accepts versions 1, 2 and 3.
StreamHeader ReadStreamHeader(ByteReader& reader);

/// Appends the chunk directory and its footer for a v2 or v3 stream. `out`
/// must hold the complete stream prefix (header, chunk records, tail
/// block): for v3 the per-chunk, header/tail, and directory checksums are
/// computed from it. Layout:
///   varint chunk_count
///   per chunk: varint offset_delta (first entry: from stream start;
///              later entries: from the previous record start),
///              varint elements, u8 index_flag,
///              [v3] u64 record checksum
///   varint tail_offset_delta (tail block offset relative to the last
///                             record start, or to stream start if empty)
///   [v3] u64 header+tail checksum
///   footer, fixed size, read from the end:
///     v2 (12 bytes): u32 directory_bytes, u32 chunk_count, u32 magic "PRD2"
///     v3 (20 bytes): u64 directory_checksum, u32 directory_bytes,
///                    u32 chunk_count, u32 magic "PRD3"
void AppendChunkDirectory(Bytes& out, const ChunkDirectory& directory,
                          std::uint8_t version = kFormatVersion3);

/// Reads and validates the chunk directory of a v2/v3 stream from its
/// trailing footer; the footer magic must match `version`. `chunks_begin`
/// is the offset of the first chunk record (= header size); offsets must be
/// strictly increasing and in bounds. For v3 the directory payload is
/// verified against the footer checksum unconditionally (the directory
/// drives every later bounds computation). Throws CorruptStreamError on any
/// inconsistency.
ChunkDirectory ReadChunkDirectory(ByteSpan stream, std::size_t chunks_begin,
                                  std::uint8_t version);

/// XXH64 over the byte ranges header_tail_checksum covers: [0, chunks_begin)
/// followed by [tail_offset, directory_offset).
std::uint64_t ComputeHeaderTailChecksum(ByteSpan stream,
                                        const ChunkDirectory& directory,
                                        std::size_t chunks_begin);

/// Registers builtin codecs and instantiates the named solver.
std::shared_ptr<const Codec> ResolveSolver(const std::string& name);

}  // namespace primacy::internal
