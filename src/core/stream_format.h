// PRIMACY stream header framing shared by the one-shot codec and the
// streaming writer/reader. Internal API (namespace primacy::internal).
#pragma once

#include <memory>
#include <string>

#include "bitstream/byte_io.h"
#include "compress/codec.h"
#include "core/primacy_codec.h"

namespace primacy::internal {

struct StreamHeader {
  Linearization linearization = Linearization::kColumn;
  bool stored = false;  // whole-stream raw fallback (adversarial input)
  std::size_t width = 8;
  std::string solver_name;
  std::uint64_t total_bytes = 0;
};

/// Appends the stream header: magic, version, flags (bit 0 = column
/// linearization, bit 1 = stored fallback), element width, solver name,
/// total byte count.
void WriteStreamHeader(Bytes& out, const PrimacyOptions& options,
                       std::uint64_t total_bytes, bool stored = false);

/// Parses and validates a stream header (including solver availability).
StreamHeader ReadStreamHeader(ByteReader& reader);

/// Registers builtin codecs and instantiates the named solver.
std::shared_ptr<const Codec> ResolveSolver(const std::string& name);

}  // namespace primacy::internal
