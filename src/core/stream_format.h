// PRIMACY stream header framing shared by the one-shot codec and the
// streaming writer/reader, plus the v2 seekable chunk directory. Internal
// API (namespace primacy::internal).
//
// Version history:
//   v1 — header, chunk records, tail block. Decoding is a sequential scan.
//   v2 — identical payload, then a chunk directory (per-chunk record byte
//        offset, element count, index flag) and a fixed-size footer locating
//        it, so a reader can jump to any chunk without scanning. One-shot
//        streams are written as v2; the streaming writer still emits v1
//        (it never holds the whole stream, and its reader is sequential by
//        construction). Readers accept both versions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bitstream/byte_io.h"
#include "compress/codec.h"
#include "core/primacy_codec.h"

namespace primacy::internal {

inline constexpr std::uint8_t kFormatVersion1 = 1;
inline constexpr std::uint8_t kFormatVersion2 = 2;

struct StreamHeader {
  std::uint8_t version = kFormatVersion2;
  Linearization linearization = Linearization::kColumn;
  bool stored = false;  // whole-stream raw fallback (adversarial input)
  std::size_t width = 8;
  std::string solver_name;
  std::uint64_t total_bytes = 0;
};

/// One chunk's directory entry: where its record starts, how many elements
/// it decodes to, and its index flag (0 = reuse, 1 = full index, 2 = delta),
/// so a reader can plan parallel decode groups and range reads from the
/// directory alone.
struct ChunkDirectoryEntry {
  std::uint64_t offset = 0;    // record start, absolute from stream start
  std::uint64_t elements = 0;  // element count the record decodes to
  std::uint8_t index_flag = 0;
};

struct ChunkDirectory {
  std::vector<ChunkDirectoryEntry> chunks;
  /// Absolute offset of the tail block (= end of the last chunk record).
  std::uint64_t tail_offset = 0;
  /// Absolute offset of the directory payload (= end of the tail block).
  /// Filled by ReadChunkDirectory; ignored by AppendChunkDirectory.
  std::uint64_t directory_offset = 0;
};

/// Appends the stream header: magic, version, flags (bit 0 = column
/// linearization, bit 1 = stored fallback), element width, solver name,
/// total byte count.
void WriteStreamHeader(Bytes& out, const PrimacyOptions& options,
                       std::uint64_t total_bytes, bool stored = false,
                       std::uint8_t version = kFormatVersion2);

/// Parses and validates a stream header (including solver availability).
/// Accepts versions 1 and 2.
StreamHeader ReadStreamHeader(ByteReader& reader);

/// Appends the v2 chunk directory and its footer. Layout:
///   varint chunk_count
///   per chunk: varint offset_delta (first entry: from stream start;
///              later entries: from the previous record start),
///              varint elements, u8 index_flag
///   varint tail_offset_delta (tail block offset relative to the last
///                             record start, or to stream start if empty)
///   footer (12 bytes, fixed): u32 directory_bytes, u32 chunk_count,
///                             u32 magic "PRD2"
void AppendChunkDirectory(Bytes& out, const ChunkDirectory& directory);

/// Reads and validates the chunk directory of a v2 stream from its trailing
/// footer. `chunks_begin` is the offset of the first chunk record (= header
/// size); offsets must be strictly increasing and in bounds. Throws
/// CorruptStreamError on any inconsistency.
ChunkDirectory ReadChunkDirectory(ByteSpan stream, std::size_t chunks_begin);

/// Registers builtin codecs and instantiates the named solver.
std::shared_ptr<const Codec> ResolveSolver(const std::string& name);

}  // namespace primacy::internal
