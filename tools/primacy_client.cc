// primacy_client: one-shot CLI for a running primacyd.
//
//   primacy_client --socket /run/primacy.sock compress   < in  > out
//   primacy_client --socket /run/primacy.sock decompress < out > in
//   primacy_client --socket /run/primacy.sock --first 0 --count 100 range
//   primacy_client --socket /run/primacy.sock ping
//   primacy_client --socket /run/primacy.sock stats
//
// Payloads default to stdin/stdout (binary-safe); --in/--out use files.
// Exit 0 on success; on failure prints the wire status, the server's
// message, and the attempt count (so quota rejections are debuggable from
// a shell).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "transport/client.h"
#include "transport/wire.h"
#include "util/bytes.h"

namespace {

using namespace primacy;

constexpr const char* kUsage =
    R"(usage: primacy_client --socket PATH [options] <op>

ops: compress | decompress | range | ping | stats

options:
  --socket PATH   daemon socket path (required)
  --tenant NAME   tenant to bill the request to (default "default")
  --in FILE       request payload file (default: stdin)
  --out FILE      response payload file (default: stdout)
  --first N       first element for `range`
  --count N       element count for `range`
  --attempts N    retry budget including the first try (default 4)
)";

Bytes ReadPayload(const std::string& path) {
  if (path.empty()) {
    std::string raw((std::istreambuf_iterator<char>(std::cin)),
                    std::istreambuf_iterator<char>());
    return BytesFromString(raw);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "primacy_client: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return BytesFromString(raw);
}

void WritePayload(const std::string& path, ByteSpan payload) {
  const std::string raw = StringFromBytes(payload);
  if (path.empty()) {
    std::fwrite(raw.data(), 1, raw.size(), stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
  if (!out) {
    std::fprintf(stderr, "primacy_client: cannot write %s\n", path.c_str());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string tenant = "default";
  std::string in_path;
  std::string out_path;
  std::uint64_t first_element = 0;
  std::uint64_t element_count = 0;
  std::size_t attempts = 4;
  std::string op;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "primacy_client: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--tenant") {
      tenant = next();
    } else if (arg == "--in") {
      in_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--first") {
      first_element = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--count") {
      element_count = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--attempts") {
      attempts = static_cast<std::size_t>(
          std::strtoull(next().c_str(), nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!arg.empty() && arg[0] != '-' && op.empty()) {
      op = arg;
    } else {
      std::fprintf(stderr, "primacy_client: unknown argument '%s'\n%s",
                   arg.c_str(), kUsage);
      return 2;
    }
  }
  if (socket_path.empty() || op.empty()) {
    std::fprintf(stderr, "primacy_client: --socket and an op are required\n%s",
                 kUsage);
    return 2;
  }

  transport::TransportClientOptions options;
  options.socket_path = socket_path;
  options.retry.max_attempts = attempts == 0 ? 1 : attempts;
  transport::TransportClient client(options);

  transport::TransportResult result;
  if (op == "compress") {
    result = client.Compress(tenant, ReadPayload(in_path));
  } else if (op == "decompress") {
    result = client.Decompress(tenant, ReadPayload(in_path));
  } else if (op == "range") {
    result = client.DecompressRange(tenant, ReadPayload(in_path),
                                    first_element, element_count);
  } else if (op == "ping") {
    result = client.Ping();
  } else if (op == "stats") {
    result = client.Stats();
  } else {
    std::fprintf(stderr, "primacy_client: unknown op '%s'\n%s", op.c_str(),
                 kUsage);
    return 2;
  }

  if (!result.ok()) {
    std::fprintf(stderr,
                 "primacy_client: %s failed: %s%s%s (attempts: %u"
                 ", retry_after_ns: %llu)\n",
                 op.c_str(), transport::WireStatusName(result.status),
                 result.error.empty() ? "" : " — ", result.error.c_str(),
                 result.attempts,
                 static_cast<unsigned long long>(result.retry_after_ns));
    return 1;
  }
  if (op == "ping") {
    std::fprintf(stderr, "primacy_client: pong (attempts: %u)\n",
                 result.attempts);
    return 0;
  }
  WritePayload(out_path, ByteSpan(result.payload.data(),
                                  result.payload.size()));
  if (op == "stats" && out_path.empty()) std::printf("\n");
  return 0;
}
