#!/usr/bin/env python3
"""Validates Prometheus text exposition format (version 0.0.4).

Usage:
    check_promtext.py <file>        validate a scrape saved to a file
    check_promtext.py -             validate stdin (curl .../metrics | ...)
    check_promtext.py --self-test   run the built-in fixture suite

Checks the subset of the format the PRIMACY exporter emits (and that a
real Prometheus server would reject violations of):

  * every line is a comment, blank, or a `name{labels} value` sample
  * metric and label names are legal, label values are properly quoted
  * sample values parse as floats (+Inf/-Inf/NaN included)
  * at most one `# TYPE` per family, declared before the family's samples —
    including suffix collisions: a histogram family owns its
    _bucket/_sum/_count names, so `# TYPE h histogram` plus
    `# TYPE h_count counter` is the same duplicate in disguise
  * no duplicate (name, labels) series
  * histogram families expose only _bucket/_sum/_count series, every
    bucket set ends at le="+Inf", and bucket counts are non-decreasing

Exit status: 0 valid, 1 invalid (problems on stderr), 2 usage error.
Stdlib only: runs anywhere CI has a python3, registered as a ctest with
self-test fixtures (cmake/StaticAnalysis.cmake).
"""

import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPE_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_labels(body, line_no, problems):
    """Parses a label body (no braces) into a sorted tuple of pairs."""
    pairs = []
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            problems.append(f"line {line_no}: label without '=': {body[i:]!r}")
            return None
        name = body[i:eq]
        if not LABEL_NAME_RE.match(name):
            problems.append(f"line {line_no}: bad label name {name!r}")
            return None
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            problems.append(f"line {line_no}: unquoted value for {name!r}")
            return None
        j = eq + 2
        value = []
        while j < len(body):
            c = body[j]
            if c == "\\":
                if j + 1 >= len(body) or body[j + 1] not in '\\"n':
                    problems.append(
                        f"line {line_no}: bad escape in value of {name!r}")
                    return None
                value.append(body[j:j + 2])
                j += 2
            elif c == '"':
                break
            else:
                value.append(c)
                j += 1
        else:
            problems.append(f"line {line_no}: unterminated value for {name!r}")
            return None
        pairs.append((name, "".join(value)))
        i = j + 1
        if i < len(body):
            if body[i] != ",":
                problems.append(
                    f"line {line_no}: expected ',' between labels, got "
                    f"{body[i]!r}")
                return None
            i += 1
    return tuple(sorted(pairs))


def parse_value(text):
    if text in ("+Inf", "-Inf", "Nan", "NaN"):
        return float(text.replace("Nan", "nan").replace("NaN", "nan")
                     .replace("Inf", "inf"))
    return float(text)  # raises ValueError on garbage


def family_of(name, histogram_families):
    """Histogram series name -> family name, else the name itself."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in histogram_families:
            return name[: -len(suffix)]
    return name


def check_exposition(text):
    """Returns a list of problem strings; empty means valid."""
    problems = []
    types = {}            # family -> kind
    families_seen = set() # families with at least one sample
    series_seen = set()   # (name, labels)
    buckets = {}          # (family, labels-without-le) -> [(le, count, line)]

    for line_no, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line != line.rstrip():
            problems.append(f"line {line_no}: trailing whitespace")
            line = line.rstrip()
        if line.startswith("#"):
            fields = line.split()
            if len(fields) >= 2 and fields[1] in ("TYPE", "HELP"):
                if len(fields) < (4 if fields[1] == "TYPE" else 3):
                    problems.append(f"line {line_no}: malformed # {fields[1]}")
                    continue
                name = fields[2]
                if not METRIC_NAME_RE.match(name):
                    problems.append(
                        f"line {line_no}: bad metric name in # {fields[1]}: "
                        f"{name!r}")
                    continue
                if fields[1] == "TYPE":
                    kind = fields[3]
                    if kind not in TYPE_KINDS:
                        problems.append(
                            f"line {line_no}: unknown type {kind!r}")
                    if name in types:
                        problems.append(
                            f"line {line_no}: duplicate # TYPE for {name}")
                    # A histogram family owns its _bucket/_sum/_count
                    # names; re-declaring one of them as a standalone
                    # family (in either order) is the duplicate-TYPE error
                    # in disguise, and the resulting exposition is
                    # ambiguous to a real scraper.
                    for suffix in HISTOGRAM_SUFFIXES:
                        if (name.endswith(suffix) and
                                types.get(name[: -len(suffix)]) ==
                                "histogram"):
                            problems.append(
                                f"line {line_no}: duplicate # TYPE: {name} "
                                "collides with histogram family "
                                f"{name[: -len(suffix)]} (which already "
                                f"owns {name})")
                        if kind == "histogram" and name + suffix in types:
                            problems.append(
                                f"line {line_no}: duplicate # TYPE: "
                                f"histogram {name} owns {name}{suffix}, "
                                "which is already declared as its own "
                                "family")
                    if name in families_seen:
                        problems.append(
                            f"line {line_no}: # TYPE for {name} after its "
                            "samples")
                    types[name] = kind
            continue

        # Sample: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)"
                         r"(\s+-?\d+)?$", line)
        if not match:
            problems.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        name, _, label_body, value_text = match.group(1, 2, 3, 4)
        labels = ()
        if label_body is not None:
            labels = parse_labels(label_body, line_no, problems)
            if labels is None:
                continue
        try:
            parse_value(value_text)
        except ValueError:
            problems.append(f"line {line_no}: bad value {value_text!r}")
            continue

        if (name, labels) in series_seen:
            problems.append(f"line {line_no}: duplicate series {name}"
                            f"{dict(labels)}")
        series_seen.add((name, labels))

        histogram_families = {n for n, k in types.items() if k == "histogram"}
        family = family_of(name, histogram_families)
        families_seen.add(family)
        if family in histogram_families:
            if name == family:
                problems.append(
                    f"line {line_no}: histogram {family} exposes a bare "
                    "series (expected _bucket/_sum/_count)")
            if name == family + "_bucket":
                les = [v for k, v in labels if k == "le"]
                if len(les) != 1:
                    problems.append(
                        f"line {line_no}: _bucket without exactly one le "
                        "label")
                    continue
                rest = tuple(p for p in labels if p[0] != "le")
                try:
                    le = parse_value(les[0])
                except ValueError:
                    problems.append(f"line {line_no}: bad le {les[0]!r}")
                    continue
                buckets.setdefault((family, rest), []).append(
                    (le, float(value_text), line_no))

    for (family, rest), entries in buckets.items():
        entries.sort()
        if entries[-1][0] != float("inf"):
            problems.append(
                f"histogram {family}{dict(rest)}: no le=\"+Inf\" bucket")
        counts = [count for _, count, _ in entries]
        if counts != sorted(counts):
            problems.append(
                f"histogram {family}{dict(rest)}: bucket counts decrease "
                "(not cumulative)")
    return problems


GOOD_FIXTURES = [
    # The exporter's own shapes: counters with/without labels, a gauge,
    # a labeled histogram.
    """# TYPE primacy_encode_chunks_total counter
primacy_encode_chunks_total 42
# TYPE primacy_service_requests_total counter
primacy_service_requests_total{result="ok",tenant="a"} 10
primacy_service_requests_total{result="rejected_quota",tenant="a"} 2
# TYPE primacy_service_queue_depth gauge
primacy_service_queue_depth 0
# TYPE primacy_encode_stage_seconds histogram
primacy_encode_stage_seconds_bucket{le="0.001",stage="solver"} 5
primacy_encode_stage_seconds_bucket{le="+Inf",stage="solver"} 7
primacy_encode_stage_seconds_sum{stage="solver"} 0.0123
primacy_encode_stage_seconds_count{stage="solver"} 7
""",
    # Escapes, HELP, floats, empty exposition.
    """# HELP odd_metric values with escapes
# TYPE odd_metric gauge
odd_metric{path="C:\\\\tmp",msg="say \\"hi\\"\\n"} -1.5e-3
""",
    "",
]

BAD_FIXTURES = [
    ("9starts_with_digit 1\n", "unparseable"),
    ("ok_metric{l=unquoted} 1\n", "unquoted"),
    ("ok_metric not_a_number\n", "bad value"),
    ("dup 1\ndup 2\n", "duplicate series"),
    ("# TYPE m counter\n# TYPE m counter\nm 1\n", "duplicate # TYPE"),
    ("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"
     "# TYPE h_count counter\nh_count 2\n", "collides with histogram"),
    ("# TYPE h_count counter\nh_count 1\n# TYPE h histogram\n"
     "h_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
     "already declared as its own family"),
    ("m 1\n# TYPE m counter\n", "after its samples"),
    ("# TYPE m weird\nm 1\n", "unknown type"),
    ("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
     "+Inf"),
    ("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n",
     "decrease"),
    ("# TYPE h histogram\nh 3\n", "bare series"),
]


def self_test():
    failures = []
    for i, fixture in enumerate(GOOD_FIXTURES):
        problems = check_exposition(fixture)
        if problems:
            failures.append(f"good fixture {i} rejected: {problems}")
    for i, (fixture, expect) in enumerate(BAD_FIXTURES):
        problems = check_exposition(fixture)
        if not problems:
            failures.append(f"bad fixture {i} accepted (expected {expect!r})")
        elif not any(expect in p for p in problems):
            failures.append(
                f"bad fixture {i}: expected a problem matching {expect!r}, "
                f"got {problems}")
    for failure in failures:
        print(f"check_promtext self-test: {failure}", file=sys.stderr)
    if not failures:
        print(f"check_promtext self-test: ok ({len(GOOD_FIXTURES)} good, "
              f"{len(BAD_FIXTURES)} bad fixtures)")
    return 1 if failures else 0


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "--self-test":
        return self_test()
    if argv[1] == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(argv[1], "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            print(f"check_promtext: {error}", file=sys.stderr)
            return 2
    problems = check_exposition(text)
    for problem in problems:
        print(f"check_promtext: {problem}", file=sys.stderr)
    if not problems:
        lines = sum(1 for l in text.split("\n")
                    if l and not l.startswith("#"))
        print(f"check_promtext: ok ({lines} samples)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
