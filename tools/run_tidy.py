#!/usr/bin/env python3
"""clang-tidy driver for the `tidy` CMake target.

Reads compile_commands.json from the build directory, keeps the entries for
first-party translation units (src/, examples/, bench/), and runs clang-tidy
over them in parallel with the repo's .clang-tidy profile. Exit status is
non-zero iff any file produced a diagnostic, so CI and
`cmake --build build --target tidy` gate identically.

Usage:
  tools/run_tidy.py -p build [--clang-tidy clang-tidy-18] [-j N] [files...]

Passing explicit files restricts the run (used by pre-commit style hooks);
files outside the compile database are reported and skipped.
"""

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys

#: Directories (relative to the repo root) whose translation units are gated.
GATED_DIRS = ("src", "examples", "bench")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_database(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        sys.exit(
            f"error: {path} not found — configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default) first"
        )
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def gated_sources(database, root):
    """First-party TU paths from the compile database, deduplicated."""
    prefixes = tuple(os.path.join(root, d) + os.sep for d in GATED_DIRS)
    seen = []
    for entry in database:
        source = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        if source.startswith(prefixes) and source not in seen:
            seen.append(source)
    return seen


def run_one(clang_tidy, build_dir, source):
    proc = subprocess.run(
        [clang_tidy, "--quiet", "-p", build_dir, source],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return source, proc.returncode, proc.stdout


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-p", "--build-dir", default="build")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("files", nargs="*")
    args = parser.parse_args()

    root = repo_root()
    database = load_database(args.build_dir)
    sources = gated_sources(database, root)
    if args.files:
        requested = {os.path.normpath(os.path.abspath(f)) for f in args.files}
        missing = requested - set(sources)
        for path in sorted(missing):
            print(f"note: {path} not in the gated compile database; skipped")
        sources = [s for s in sources if s in requested]
    if not sources:
        print("run_tidy: no gated translation units to check")
        return 0

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [
            pool.submit(run_one, args.clang_tidy, args.build_dir, source)
            for source in sources
        ]
        for future in concurrent.futures.as_completed(futures):
            source, code, output = future.result()
            if code != 0 or output.strip():
                failures += 1
                rel = os.path.relpath(source, root)
                print(f"--- clang-tidy: {rel}")
                print(output, end="" if output.endswith("\n") else "\n")

    checked = len(sources)
    if failures:
        print(f"run_tidy: {failures}/{checked} files with diagnostics")
        return 1
    print(f"run_tidy: {checked} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
