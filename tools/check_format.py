#!/usr/bin/env python3
"""clang-format gate, check-only — never rewrites a file.

Default: checks every tracked C++ file under the first-party directories.
With --changed-only BASE, checks only files that differ from the merge-base
with BASE (plus uncommitted changes) — the mode CI uses so a formatting
opinion change in clang-format never blocks an unrelated PR.

Usage:
  tools/check_format.py [--clang-format clang-format-18] [--changed-only main]
"""

import argparse
import os
import subprocess
import sys

CHECKED_DIRS = ("src", "examples", "bench", "tests", "tools")
EXTENSIONS = (".cc", ".h", ".cpp")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_lines(root, *argv):
    proc = subprocess.run(
        ["git", "-C", root, *argv], stdout=subprocess.PIPE, text=True, check=True
    )
    return [line for line in proc.stdout.splitlines() if line]


def candidate_files(root, changed_only):
    if changed_only:
        merge_base = git_lines(root, "merge-base", changed_only, "HEAD")[0]
        files = set(
            git_lines(root, "diff", "--name-only", "--diff-filter=ACMR", merge_base)
        )
        files |= set(git_lines(root, "diff", "--name-only", "--diff-filter=ACMR"))
    else:
        files = set(git_lines(root, "ls-files"))
    return sorted(
        f
        for f in files
        if f.startswith(tuple(d + "/" for d in CHECKED_DIRS))
        and f.endswith(EXTENSIONS)
        and os.path.exists(os.path.join(root, f))
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-format", default="clang-format")
    parser.add_argument(
        "--changed-only",
        metavar="BASE",
        help="check only files changed since merge-base with BASE",
    )
    args = parser.parse_args()

    root = repo_root()
    files = candidate_files(root, args.changed_only)
    if not files:
        print("check_format: nothing to check")
        return 0

    bad = []
    for rel in files:
        proc = subprocess.run(
            [args.clang_format, "--dry-run", "--Werror", os.path.join(root, rel)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        if proc.returncode != 0:
            bad.append(rel)
            print(proc.stdout, end="" if proc.stdout.endswith("\n") else "\n")

    if bad:
        print(f"check_format: {len(bad)}/{len(files)} files need formatting:")
        for rel in bad:
            print(f"  clang-format -i {rel}")
        return 1
    print(f"check_format: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
