// primacyd: the PRIMACY compression daemon.
//
// Hosts one multi-tenant CompressionService behind a Unix-domain-socket
// TransportServer (src/transport), turning the in-process service into a
// real multi-process server: any number of client processes connect with
// TransportClient (or the primacy_client CLI) and get responses that are
// byte-identical to direct library calls.
//
//   ./primacyd --socket /run/primacy.sock
//       --tenant plasma,rate=64m,burst=128m,inflight=32,cache_share=0.5
//       --tenant batch,policy=block
//       --cache-bytes 256m --max-connections 128
//
// Observability: with PRIMACY_METRICS_PORT set, the process serves
// /metrics, /statusz (including the service's per-tenant JSON), /healthz,
// and /quitquitquit on 127.0.0.1 — see telemetry/exporter.
//
// Shutdown: SIGINT, SIGTERM, and GET /quitquitquit all funnel into the
// same graceful drain — stop accepting, finish every in-flight request,
// flush replies, close, exit 0.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/service.h"
#include "telemetry/exporter/observability_hub.h"
#include "transport/server.h"
#include "transport/shutdown_signal.h"
#include "util/error.h"

namespace {

using namespace primacy;

constexpr const char* kUsage = R"(usage: primacyd --socket PATH [options]

Serve a multi-tenant PRIMACY compression service over a Unix domain socket.

options:
  --socket PATH         socket path to bind (required)
  --tenant SPEC         register a tenant; repeatable. SPEC is
                        name[,key=value...] with keys:
                          rate=BYTES        quota bytes/sec (0 = unlimited)
                          burst=BYTES       quota burst (0 = 1s of rate)
                          inflight=N        max in-flight requests (0 = off)
                          policy=reject|block  backpressure policy
                          cache_share=F     fraction of --cache-bytes [0,1]
                          memo=BYTES        compress-result memo budget
                        default when omitted: one unlimited tenant "default"
  --cache-bytes BYTES   decoded-block cache budget split by cache_share (0)
  --max-connections N   concurrent connection cap (64)
  --max-pipelined N     queued replies per connection before the reader
                        pauses (128)
  --slow-slo-ms N       slow-request watchdog SLO in milliseconds (0 = off)
  --help                print this and exit

BYTES accepts k/m/g suffixes (KiB/MiB/GiB). Set PRIMACY_METRICS_PORT to
serve /metrics, /statusz, and /quitquitquit on 127.0.0.1.
)";

/// "64m" -> 64 MiB. Exits with a message on garbage.
std::uint64_t ParseBytes(const std::string& text, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  std::uint64_t scale = 1;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k': case 'K': scale = 1ull << 10; ++end; break;
      case 'm': case 'M': scale = 1ull << 20; ++end; break;
      case 'g': case 'G': scale = 1ull << 30; ++end; break;
      default: break;
    }
  }
  if (end == nullptr || *end != '\0' || end == text.c_str()) {
    std::fprintf(stderr, "primacyd: bad %s value '%s'\n", what, text.c_str());
    std::exit(2);
  }
  return value * scale;
}

/// "name,rate=64m,policy=block" -> TenantConfig. Exits on unknown keys so a
/// typo'd quota never silently becomes an unlimited tenant.
service::TenantConfig ParseTenantSpec(const std::string& spec) {
  service::TenantConfig config;
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(start, comma - start);
    start = comma + 1;
    if (first) {
      config.name = field;
      first = false;
      continue;
    }
    const std::size_t eq = field.find('=');
    const std::string key = field.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : field.substr(eq + 1);
    if (key == "rate") {
      config.quota_bytes_per_sec = ParseBytes(value, "rate");
    } else if (key == "burst") {
      config.quota_burst_bytes = ParseBytes(value, "burst");
    } else if (key == "inflight") {
      config.max_inflight =
          static_cast<std::size_t>(ParseBytes(value, "inflight"));
    } else if (key == "policy") {
      if (value == "reject") {
        config.on_pressure = service::BackpressurePolicy::kReject;
      } else if (value == "block") {
        config.on_pressure = service::BackpressurePolicy::kBlock;
      } else {
        std::fprintf(stderr, "primacyd: bad policy '%s' in tenant spec\n",
                     value.c_str());
        std::exit(2);
      }
    } else if (key == "cache_share") {
      config.cache_share = std::atof(value.c_str());
    } else if (key == "memo") {
      config.memo_bytes = static_cast<std::size_t>(ParseBytes(value, "memo"));
    } else {
      std::fprintf(stderr, "primacyd: unknown tenant key '%s' in '%s'\n",
                   key.c_str(), spec.c_str());
      std::exit(2);
    }
  }
  if (config.name.empty()) {
    std::fprintf(stderr, "primacyd: tenant spec '%s' has no name\n",
                 spec.c_str());
    std::exit(2);
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::vector<service::TenantConfig> tenants;
  std::uint64_t cache_bytes = 0;
  std::size_t max_connections = 64;
  std::size_t max_pipelined = 128;
  std::uint64_t slow_slo_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "primacyd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--tenant") {
      tenants.push_back(ParseTenantSpec(next()));
    } else if (arg == "--cache-bytes") {
      cache_bytes = ParseBytes(next(), "--cache-bytes");
    } else if (arg == "--max-connections") {
      max_connections =
          static_cast<std::size_t>(ParseBytes(next(), "--max-connections"));
    } else if (arg == "--max-pipelined") {
      max_pipelined =
          static_cast<std::size_t>(ParseBytes(next(), "--max-pipelined"));
    } else if (arg == "--slow-slo-ms") {
      slow_slo_ms = ParseBytes(next(), "--slow-slo-ms");
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "primacyd: unknown flag '%s'\n%s", arg.c_str(),
                   kUsage);
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "primacyd: --socket is required\n%s", kUsage);
    return 2;
  }
  if (tenants.empty()) tenants.push_back({.name = "default"});

  // Install the signal handlers before any serving thread exists so an
  // early Ctrl-C still runs the drain path instead of default termination.
  auto& shutdown = primacy::transport::ShutdownSignal::Instance();
  std::string error;
  if (!shutdown.Install(&error)) {
    std::fprintf(stderr, "primacyd: signal install failed: %s\n",
                 error.c_str());
    return 1;
  }

  service::ServiceOptions service_options;
  service_options.cache_capacity_bytes =
      static_cast<std::size_t>(cache_bytes);
  service_options.slow_request_slo_ns = slow_slo_ms * 1'000'000ull;
  service::CompressionService compression(service_options);
  try {
    for (const auto& tenant : tenants) compression.AddTenant(tenant);
  } catch (const Error& e) {
    std::fprintf(stderr, "primacyd: bad tenant config: %s\n", e.what());
    return 2;
  }

  // PRIMACY_METRICS_PORT / PRIMACY_TRACE_DIR / PRIMACY_PROFILE_HZ make the
  // daemon scrapeable; the hub's /quitquitquit latches ShutdownRequested,
  // observed by the drain loop below.
  telemetry::ObservabilityHub* hub = telemetry::MaybeStartHubFromEnv();
  if (hub != nullptr) {
    hub->AddStatusSource("service",
                         [&compression] { return compression.StatusJson(); });
  }

  transport::TransportServerOptions server_options;
  server_options.socket_path = socket_path;
  server_options.max_connections = max_connections;
  server_options.max_pipelined_requests = max_pipelined;
  transport::TransportServer server(compression, server_options);
  if (!server.Start(&error)) {
    std::fprintf(stderr, "primacyd: %s\n", error.c_str());
    return 1;
  }
  std::printf("primacyd: serving %zu tenant%s on %s\n", tenants.size(),
              tenants.size() == 1 ? "" : "s", socket_path.c_str());
  if (hub != nullptr && hub->HttpPort() >= 0) {
    std::printf("primacyd: observability on 127.0.0.1:%d\n", hub->HttpPort());
  }
  std::fflush(stdout);

  // Drain loop: WaitRequested blocks on the signal pipe in slices so the
  // hub's /quitquitquit latch is also observed promptly. All three stop
  // sources share the drain below.
  while (!shutdown.Requested() &&
         !(hub != nullptr && hub->ShutdownRequested())) {
    shutdown.WaitRequested(100'000'000ull);
  }

  std::printf("primacyd: draining (%s)\n",
              shutdown.Requested() ? "signal" : "/quitquitquit");
  std::fflush(stdout);
  server.Shutdown();
  if (hub != nullptr) hub->Stop();
  const auto stats = server.Stats();
  std::printf("primacyd: served %llu requests over %llu connections\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}
