file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_store.dir/checkpoint_store_test.cc.o"
  "CMakeFiles/test_checkpoint_store.dir/checkpoint_store_test.cc.o.d"
  "test_checkpoint_store"
  "test_checkpoint_store.pdb"
  "test_checkpoint_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
