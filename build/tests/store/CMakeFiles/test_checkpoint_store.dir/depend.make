# Empty dependencies file for test_checkpoint_store.
# This may be replaced when dependencies are built.
