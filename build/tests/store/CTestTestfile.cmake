# CMake generated Testfile for 
# Source directory: /root/repo/tests/store
# Build directory: /root/repo/build/tests/store
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/store/test_checkpoint_store[1]_include.cmake")
