# Empty dependencies file for test_isobar_analyzer.
# This may be replaced when dependencies are built.
