file(REMOVE_RECURSE
  "CMakeFiles/test_isobar_analyzer.dir/analyzer_test.cc.o"
  "CMakeFiles/test_isobar_analyzer.dir/analyzer_test.cc.o.d"
  "test_isobar_analyzer"
  "test_isobar_analyzer.pdb"
  "test_isobar_analyzer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isobar_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
