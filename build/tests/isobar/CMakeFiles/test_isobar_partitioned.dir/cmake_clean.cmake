file(REMOVE_RECURSE
  "CMakeFiles/test_isobar_partitioned.dir/partitioned_test.cc.o"
  "CMakeFiles/test_isobar_partitioned.dir/partitioned_test.cc.o.d"
  "test_isobar_partitioned"
  "test_isobar_partitioned.pdb"
  "test_isobar_partitioned[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isobar_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
