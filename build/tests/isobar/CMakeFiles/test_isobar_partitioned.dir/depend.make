# Empty dependencies file for test_isobar_partitioned.
# This may be replaced when dependencies are built.
