# CMake generated Testfile for 
# Source directory: /root/repo/tests/isobar
# Build directory: /root/repo/build/tests/isobar
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/isobar/test_isobar_analyzer[1]_include.cmake")
include("/root/repo/build/tests/isobar/test_isobar_partitioned[1]_include.cmake")
