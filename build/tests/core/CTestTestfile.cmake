# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/test_frequency[1]_include.cmake")
include("/root/repo/build/tests/core/test_id_mapper[1]_include.cmake")
include("/root/repo/build/tests/core/test_primacy_codec[1]_include.cmake")
include("/root/repo/build/tests/core/test_in_situ[1]_include.cmake")
include("/root/repo/build/tests/core/test_single_precision[1]_include.cmake")
include("/root/repo/build/tests/core/test_streaming[1]_include.cmake")
include("/root/repo/build/tests/core/test_chunk_pipeline[1]_include.cmake")
include("/root/repo/build/tests/core/test_in_situ_edge[1]_include.cmake")
