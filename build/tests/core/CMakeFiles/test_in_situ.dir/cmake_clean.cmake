file(REMOVE_RECURSE
  "CMakeFiles/test_in_situ.dir/in_situ_test.cc.o"
  "CMakeFiles/test_in_situ.dir/in_situ_test.cc.o.d"
  "test_in_situ"
  "test_in_situ.pdb"
  "test_in_situ[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_in_situ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
