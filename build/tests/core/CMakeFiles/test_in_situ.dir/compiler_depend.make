# Empty compiler generated dependencies file for test_in_situ.
# This may be replaced when dependencies are built.
