file(REMOVE_RECURSE
  "CMakeFiles/test_in_situ_edge.dir/in_situ_edge_test.cc.o"
  "CMakeFiles/test_in_situ_edge.dir/in_situ_edge_test.cc.o.d"
  "test_in_situ_edge"
  "test_in_situ_edge.pdb"
  "test_in_situ_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_in_situ_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
