# Empty dependencies file for test_in_situ_edge.
# This may be replaced when dependencies are built.
