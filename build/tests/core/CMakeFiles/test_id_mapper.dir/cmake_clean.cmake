file(REMOVE_RECURSE
  "CMakeFiles/test_id_mapper.dir/id_mapper_test.cc.o"
  "CMakeFiles/test_id_mapper.dir/id_mapper_test.cc.o.d"
  "test_id_mapper"
  "test_id_mapper.pdb"
  "test_id_mapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_id_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
