# Empty dependencies file for test_id_mapper.
# This may be replaced when dependencies are built.
