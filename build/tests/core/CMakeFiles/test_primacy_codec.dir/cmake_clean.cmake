file(REMOVE_RECURSE
  "CMakeFiles/test_primacy_codec.dir/primacy_codec_test.cc.o"
  "CMakeFiles/test_primacy_codec.dir/primacy_codec_test.cc.o.d"
  "test_primacy_codec"
  "test_primacy_codec.pdb"
  "test_primacy_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_primacy_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
