# Empty dependencies file for test_primacy_codec.
# This may be replaced when dependencies are built.
