file(REMOVE_RECURSE
  "CMakeFiles/test_streaming.dir/streaming_test.cc.o"
  "CMakeFiles/test_streaming.dir/streaming_test.cc.o.d"
  "test_streaming"
  "test_streaming.pdb"
  "test_streaming[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
