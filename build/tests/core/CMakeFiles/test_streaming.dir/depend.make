# Empty dependencies file for test_streaming.
# This may be replaced when dependencies are built.
