file(REMOVE_RECURSE
  "CMakeFiles/test_frequency.dir/frequency_test.cc.o"
  "CMakeFiles/test_frequency.dir/frequency_test.cc.o.d"
  "test_frequency"
  "test_frequency.pdb"
  "test_frequency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
