file(REMOVE_RECURSE
  "CMakeFiles/test_single_precision.dir/single_precision_test.cc.o"
  "CMakeFiles/test_single_precision.dir/single_precision_test.cc.o.d"
  "test_single_precision"
  "test_single_precision.pdb"
  "test_single_precision[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
