# Empty compiler generated dependencies file for test_single_precision.
# This may be replaced when dependencies are built.
