file(REMOVE_RECURSE
  "CMakeFiles/test_chunk_pipeline.dir/chunk_pipeline_test.cc.o"
  "CMakeFiles/test_chunk_pipeline.dir/chunk_pipeline_test.cc.o.d"
  "test_chunk_pipeline"
  "test_chunk_pipeline.pdb"
  "test_chunk_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunk_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
