# Empty dependencies file for test_chunk_pipeline.
# This may be replaced when dependencies are built.
