# CMake generated Testfile for 
# Source directory: /root/repo/tests/bwt
# Build directory: /root/repo/build/tests/bwt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bwt/test_suffix_array[1]_include.cmake")
include("/root/repo/build/tests/bwt/test_bwt_transform[1]_include.cmake")
