# Empty dependencies file for test_suffix_array.
# This may be replaced when dependencies are built.
