file(REMOVE_RECURSE
  "CMakeFiles/test_suffix_array.dir/suffix_array_test.cc.o"
  "CMakeFiles/test_suffix_array.dir/suffix_array_test.cc.o.d"
  "test_suffix_array"
  "test_suffix_array.pdb"
  "test_suffix_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suffix_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
