file(REMOVE_RECURSE
  "CMakeFiles/test_bwt_transform.dir/transform_test.cc.o"
  "CMakeFiles/test_bwt_transform.dir/transform_test.cc.o.d"
  "test_bwt_transform"
  "test_bwt_transform.pdb"
  "test_bwt_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bwt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
