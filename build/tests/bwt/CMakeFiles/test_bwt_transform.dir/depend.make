# Empty dependencies file for test_bwt_transform.
# This may be replaced when dependencies are built.
