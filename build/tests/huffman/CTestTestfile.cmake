# CMake generated Testfile for 
# Source directory: /root/repo/tests/huffman
# Build directory: /root/repo/build/tests/huffman
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/huffman/test_huffman[1]_include.cmake")
include("/root/repo/build/tests/huffman/test_package_merge[1]_include.cmake")
