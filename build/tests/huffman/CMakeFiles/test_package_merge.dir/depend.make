# Empty dependencies file for test_package_merge.
# This may be replaced when dependencies are built.
