file(REMOVE_RECURSE
  "CMakeFiles/test_package_merge.dir/package_merge_test.cc.o"
  "CMakeFiles/test_package_merge.dir/package_merge_test.cc.o.d"
  "test_package_merge"
  "test_package_merge.pdb"
  "test_package_merge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_package_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
