file(REMOVE_RECURSE
  "CMakeFiles/test_lz77.dir/lz77_test.cc.o"
  "CMakeFiles/test_lz77.dir/lz77_test.cc.o.d"
  "test_lz77"
  "test_lz77.pdb"
  "test_lz77[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lz77.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
