# Empty compiler generated dependencies file for test_lz77.
# This may be replaced when dependencies are built.
