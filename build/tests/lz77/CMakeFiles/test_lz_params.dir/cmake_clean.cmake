file(REMOVE_RECURSE
  "CMakeFiles/test_lz_params.dir/lz_params_test.cc.o"
  "CMakeFiles/test_lz_params.dir/lz_params_test.cc.o.d"
  "test_lz_params"
  "test_lz_params.pdb"
  "test_lz_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lz_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
