# Empty compiler generated dependencies file for test_lz_params.
# This may be replaced when dependencies are built.
