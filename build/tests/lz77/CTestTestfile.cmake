# CMake generated Testfile for 
# Source directory: /root/repo/tests/lz77
# Build directory: /root/repo/build/tests/lz77
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lz77/test_lz77[1]_include.cmake")
include("/root/repo/build/tests/lz77/test_lz_params[1]_include.cmake")
