# CMake generated Testfile for 
# Source directory: /root/repo/tests/codecs
# Build directory: /root/repo/build/tests/codecs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/codecs/test_codec_roundtrip[1]_include.cmake")
include("/root/repo/build/tests/codecs/test_deflate[1]_include.cmake")
include("/root/repo/build/tests/codecs/test_registry_frame[1]_include.cmake")
include("/root/repo/build/tests/codecs/test_zlib_crosscheck[1]_include.cmake")
include("/root/repo/build/tests/codecs/test_lzfast[1]_include.cmake")
include("/root/repo/build/tests/codecs/test_bwt_codec[1]_include.cmake")
include("/root/repo/build/tests/codecs/test_fpc[1]_include.cmake")
include("/root/repo/build/tests/codecs/test_fpz[1]_include.cmake")
