# Empty compiler generated dependencies file for test_fpz.
# This may be replaced when dependencies are built.
