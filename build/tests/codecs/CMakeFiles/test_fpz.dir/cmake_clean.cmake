file(REMOVE_RECURSE
  "CMakeFiles/test_fpz.dir/fpz_test.cc.o"
  "CMakeFiles/test_fpz.dir/fpz_test.cc.o.d"
  "test_fpz"
  "test_fpz.pdb"
  "test_fpz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
