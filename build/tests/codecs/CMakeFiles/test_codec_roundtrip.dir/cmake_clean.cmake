file(REMOVE_RECURSE
  "CMakeFiles/test_codec_roundtrip.dir/codec_roundtrip_test.cc.o"
  "CMakeFiles/test_codec_roundtrip.dir/codec_roundtrip_test.cc.o.d"
  "test_codec_roundtrip"
  "test_codec_roundtrip.pdb"
  "test_codec_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codec_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
