
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codecs/codec_roundtrip_test.cc" "tests/codecs/CMakeFiles/test_codec_roundtrip.dir/codec_roundtrip_test.cc.o" "gcc" "tests/codecs/CMakeFiles/test_codec_roundtrip.dir/codec_roundtrip_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datasets/CMakeFiles/primacy_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/primacy_store.dir/DependInfo.cmake"
  "/root/repo/build/src/hpcsim/CMakeFiles/primacy_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/primacy_model.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/primacy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/deflate/CMakeFiles/primacy_deflate.dir/DependInfo.cmake"
  "/root/repo/build/src/lz77/CMakeFiles/primacy_lz77.dir/DependInfo.cmake"
  "/root/repo/build/src/lzfast/CMakeFiles/primacy_lzfast.dir/DependInfo.cmake"
  "/root/repo/build/src/bwt/CMakeFiles/primacy_bwt.dir/DependInfo.cmake"
  "/root/repo/build/src/fpc/CMakeFiles/primacy_fpc.dir/DependInfo.cmake"
  "/root/repo/build/src/fpzip_like/CMakeFiles/primacy_fpzip_like.dir/DependInfo.cmake"
  "/root/repo/build/src/huffman/CMakeFiles/primacy_huffman.dir/DependInfo.cmake"
  "/root/repo/build/src/isobar/CMakeFiles/primacy_isobar.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/primacy_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/primacy_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/primacy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
