file(REMOVE_RECURSE
  "CMakeFiles/test_deflate.dir/deflate_test.cc.o"
  "CMakeFiles/test_deflate.dir/deflate_test.cc.o.d"
  "test_deflate"
  "test_deflate.pdb"
  "test_deflate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
