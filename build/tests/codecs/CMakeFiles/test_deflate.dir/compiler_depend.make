# Empty compiler generated dependencies file for test_deflate.
# This may be replaced when dependencies are built.
