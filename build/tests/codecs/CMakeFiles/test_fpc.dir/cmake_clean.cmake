file(REMOVE_RECURSE
  "CMakeFiles/test_fpc.dir/fpc_test.cc.o"
  "CMakeFiles/test_fpc.dir/fpc_test.cc.o.d"
  "test_fpc"
  "test_fpc.pdb"
  "test_fpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
