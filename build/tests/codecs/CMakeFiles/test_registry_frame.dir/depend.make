# Empty dependencies file for test_registry_frame.
# This may be replaced when dependencies are built.
