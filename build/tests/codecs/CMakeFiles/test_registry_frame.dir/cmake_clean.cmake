file(REMOVE_RECURSE
  "CMakeFiles/test_registry_frame.dir/registry_frame_test.cc.o"
  "CMakeFiles/test_registry_frame.dir/registry_frame_test.cc.o.d"
  "test_registry_frame"
  "test_registry_frame.pdb"
  "test_registry_frame[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_registry_frame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
