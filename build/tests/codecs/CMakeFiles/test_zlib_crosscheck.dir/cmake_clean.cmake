file(REMOVE_RECURSE
  "CMakeFiles/test_zlib_crosscheck.dir/zlib_crosscheck_test.cc.o"
  "CMakeFiles/test_zlib_crosscheck.dir/zlib_crosscheck_test.cc.o.d"
  "test_zlib_crosscheck"
  "test_zlib_crosscheck.pdb"
  "test_zlib_crosscheck[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zlib_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
