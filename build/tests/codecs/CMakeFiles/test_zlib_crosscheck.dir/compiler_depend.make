# Empty compiler generated dependencies file for test_zlib_crosscheck.
# This may be replaced when dependencies are built.
