# Empty compiler generated dependencies file for test_bwt_codec.
# This may be replaced when dependencies are built.
