file(REMOVE_RECURSE
  "CMakeFiles/test_bwt_codec.dir/bwt_codec_test.cc.o"
  "CMakeFiles/test_bwt_codec.dir/bwt_codec_test.cc.o.d"
  "test_bwt_codec"
  "test_bwt_codec.pdb"
  "test_bwt_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bwt_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
