# Empty compiler generated dependencies file for test_lzfast.
# This may be replaced when dependencies are built.
