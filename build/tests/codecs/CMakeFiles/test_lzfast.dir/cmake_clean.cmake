file(REMOVE_RECURSE
  "CMakeFiles/test_lzfast.dir/lzfast_test.cc.o"
  "CMakeFiles/test_lzfast.dir/lzfast_test.cc.o.d"
  "test_lzfast"
  "test_lzfast.pdb"
  "test_lzfast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lzfast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
