# CMake generated Testfile for 
# Source directory: /root/repo/tests/model
# Build directory: /root/repo/build/tests/model
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/model/test_perf_model[1]_include.cmake")
include("/root/repo/build/tests/model/test_read_model[1]_include.cmake")
