file(REMOVE_RECURSE
  "CMakeFiles/test_read_model.dir/read_model_test.cc.o"
  "CMakeFiles/test_read_model.dir/read_model_test.cc.o.d"
  "test_read_model"
  "test_read_model.pdb"
  "test_read_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_read_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
