# Empty compiler generated dependencies file for test_read_model.
# This may be replaced when dependencies are built.
