file(REMOVE_RECURSE
  "CMakeFiles/test_checkpoint_planner.dir/checkpoint_planner_test.cc.o"
  "CMakeFiles/test_checkpoint_planner.dir/checkpoint_planner_test.cc.o.d"
  "test_checkpoint_planner"
  "test_checkpoint_planner.pdb"
  "test_checkpoint_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checkpoint_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
