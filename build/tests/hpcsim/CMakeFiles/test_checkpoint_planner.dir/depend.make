# Empty dependencies file for test_checkpoint_planner.
# This may be replaced when dependencies are built.
