file(REMOVE_RECURSE
  "CMakeFiles/test_staging.dir/staging_test.cc.o"
  "CMakeFiles/test_staging.dir/staging_test.cc.o.d"
  "test_staging"
  "test_staging.pdb"
  "test_staging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
