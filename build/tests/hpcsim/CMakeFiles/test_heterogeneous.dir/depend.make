# Empty dependencies file for test_heterogeneous.
# This may be replaced when dependencies are built.
