# CMake generated Testfile for 
# Source directory: /root/repo/tests/hpcsim
# Build directory: /root/repo/build/tests/hpcsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hpcsim/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/hpcsim/test_resources[1]_include.cmake")
include("/root/repo/build/tests/hpcsim/test_staging[1]_include.cmake")
include("/root/repo/build/tests/hpcsim/test_checkpoint_planner[1]_include.cmake")
include("/root/repo/build/tests/hpcsim/test_heterogeneous[1]_include.cmake")
include("/root/repo/build/tests/hpcsim/test_workload[1]_include.cmake")
