file(REMOVE_RECURSE
  "CMakeFiles/test_paper_claims.dir/paper_claims_test.cc.o"
  "CMakeFiles/test_paper_claims.dir/paper_claims_test.cc.o.d"
  "test_paper_claims"
  "test_paper_claims.pdb"
  "test_paper_claims[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
