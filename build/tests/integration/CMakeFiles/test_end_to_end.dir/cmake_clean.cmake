file(REMOVE_RECURSE
  "CMakeFiles/test_end_to_end.dir/end_to_end_test.cc.o"
  "CMakeFiles/test_end_to_end.dir/end_to_end_test.cc.o.d"
  "test_end_to_end"
  "test_end_to_end.pdb"
  "test_end_to_end[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
