# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/integration/test_end_to_end[1]_include.cmake")
