# CMake generated Testfile for 
# Source directory: /root/repo/tests/bitstream
# Build directory: /root/repo/build/tests/bitstream
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bitstream/test_bit_io[1]_include.cmake")
include("/root/repo/build/tests/bitstream/test_byte_io[1]_include.cmake")
