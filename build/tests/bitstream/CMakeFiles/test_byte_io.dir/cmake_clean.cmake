file(REMOVE_RECURSE
  "CMakeFiles/test_byte_io.dir/byte_io_test.cc.o"
  "CMakeFiles/test_byte_io.dir/byte_io_test.cc.o.d"
  "test_byte_io"
  "test_byte_io.pdb"
  "test_byte_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byte_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
