# Empty dependencies file for test_byte_io.
# This may be replaced when dependencies are built.
