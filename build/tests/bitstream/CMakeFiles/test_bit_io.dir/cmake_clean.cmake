file(REMOVE_RECURSE
  "CMakeFiles/test_bit_io.dir/bit_io_test.cc.o"
  "CMakeFiles/test_bit_io.dir/bit_io_test.cc.o.d"
  "test_bit_io"
  "test_bit_io.pdb"
  "test_bit_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
