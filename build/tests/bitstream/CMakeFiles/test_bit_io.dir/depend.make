# Empty dependencies file for test_bit_io.
# This may be replaced when dependencies are built.
