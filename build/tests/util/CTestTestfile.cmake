# CMake generated Testfile for 
# Source directory: /root/repo/tests/util
# Build directory: /root/repo/build/tests/util
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util/test_rng[1]_include.cmake")
include("/root/repo/build/tests/util/test_byte_matrix[1]_include.cmake")
include("/root/repo/build/tests/util/test_stats[1]_include.cmake")
include("/root/repo/build/tests/util/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/util/test_bytes[1]_include.cmake")
