file(REMOVE_RECURSE
  "CMakeFiles/test_bytes.dir/bytes_test.cc.o"
  "CMakeFiles/test_bytes.dir/bytes_test.cc.o.d"
  "test_bytes"
  "test_bytes.pdb"
  "test_bytes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
