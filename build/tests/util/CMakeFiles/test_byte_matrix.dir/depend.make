# Empty dependencies file for test_byte_matrix.
# This may be replaced when dependencies are built.
