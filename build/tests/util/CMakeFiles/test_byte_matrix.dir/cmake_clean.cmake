file(REMOVE_RECURSE
  "CMakeFiles/test_byte_matrix.dir/byte_matrix_test.cc.o"
  "CMakeFiles/test_byte_matrix.dir/byte_matrix_test.cc.o.d"
  "test_byte_matrix"
  "test_byte_matrix.pdb"
  "test_byte_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byte_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
