add_test([=[UmbrellaHeaderTest.CoreTypesAreVisible]=]  /root/repo/build/tests/test_umbrella [==[--gtest_filter=UmbrellaHeaderTest.CoreTypesAreVisible]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaHeaderTest.CoreTypesAreVisible]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_umbrella_TESTS UmbrellaHeaderTest.CoreTypesAreVisible)
