# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_umbrella[1]_include.cmake")
subdirs("util")
subdirs("bitstream")
subdirs("huffman")
subdirs("lz77")
subdirs("codecs")
subdirs("bwt")
subdirs("isobar")
subdirs("core")
subdirs("store")
subdirs("datasets")
subdirs("model")
subdirs("hpcsim")
subdirs("integration")
