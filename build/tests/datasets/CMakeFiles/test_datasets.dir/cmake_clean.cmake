file(REMOVE_RECURSE
  "CMakeFiles/test_datasets.dir/datasets_test.cc.o"
  "CMakeFiles/test_datasets.dir/datasets_test.cc.o.d"
  "test_datasets"
  "test_datasets.pdb"
  "test_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
