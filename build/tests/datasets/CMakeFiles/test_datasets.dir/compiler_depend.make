# Empty compiler generated dependencies file for test_datasets.
# This may be replaced when dependencies are built.
