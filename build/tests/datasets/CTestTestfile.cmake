# CMake generated Testfile for 
# Source directory: /root/repo/tests/datasets
# Build directory: /root/repo/build/tests/datasets
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/datasets/test_datasets[1]_include.cmake")
