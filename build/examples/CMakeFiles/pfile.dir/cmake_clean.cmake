file(REMOVE_RECURSE
  "CMakeFiles/pfile.dir/pfile.cpp.o"
  "CMakeFiles/pfile.dir/pfile.cpp.o.d"
  "pfile"
  "pfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
