# Empty compiler generated dependencies file for pfile.
# This may be replaced when dependencies are built.
