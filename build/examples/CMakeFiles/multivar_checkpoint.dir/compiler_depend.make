# Empty compiler generated dependencies file for multivar_checkpoint.
# This may be replaced when dependencies are built.
