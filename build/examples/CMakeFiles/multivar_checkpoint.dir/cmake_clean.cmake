file(REMOVE_RECURSE
  "CMakeFiles/multivar_checkpoint.dir/multivar_checkpoint.cpp.o"
  "CMakeFiles/multivar_checkpoint.dir/multivar_checkpoint.cpp.o.d"
  "multivar_checkpoint"
  "multivar_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multivar_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
