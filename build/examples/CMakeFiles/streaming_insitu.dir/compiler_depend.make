# Empty compiler generated dependencies file for streaming_insitu.
# This may be replaced when dependencies are built.
