file(REMOVE_RECURSE
  "CMakeFiles/streaming_insitu.dir/streaming_insitu.cpp.o"
  "CMakeFiles/streaming_insitu.dir/streaming_insitu.cpp.o.d"
  "streaming_insitu"
  "streaming_insitu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_insitu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
