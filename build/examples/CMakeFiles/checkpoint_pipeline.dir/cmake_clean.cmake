file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_pipeline.dir/checkpoint_pipeline.cpp.o"
  "CMakeFiles/checkpoint_pipeline.dir/checkpoint_pipeline.cpp.o.d"
  "checkpoint_pipeline"
  "checkpoint_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
