file(REMOVE_RECURSE
  "CMakeFiles/primacy_inspect.dir/primacy_inspect.cpp.o"
  "CMakeFiles/primacy_inspect.dir/primacy_inspect.cpp.o.d"
  "primacy_inspect"
  "primacy_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
