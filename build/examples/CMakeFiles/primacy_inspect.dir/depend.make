# Empty dependencies file for primacy_inspect.
# This may be replaced when dependencies are built.
