# Empty compiler generated dependencies file for staging_whatif.
# This may be replaced when dependencies are built.
