file(REMOVE_RECURSE
  "CMakeFiles/staging_whatif.dir/staging_whatif.cpp.o"
  "CMakeFiles/staging_whatif.dir/staging_whatif.cpp.o.d"
  "staging_whatif"
  "staging_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staging_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
