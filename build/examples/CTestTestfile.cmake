# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "num_plasma" "20000")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_checkpoint "/root/repo/build/examples/checkpoint_pipeline" "obs_info" "30000" "1")
set_tests_properties(example_checkpoint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_whatif "/root/repo/build/examples/staging_whatif" "flash_velx" "8" "120" "30" "90")
set_tests_properties(example_whatif PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming "/root/repo/build/examples/streaming_insitu" "obs_temp" "50000" "7000")
set_tests_properties(example_streaming PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect "/root/repo/build/examples/primacy_inspect" "--demo" "obs_error")
set_tests_properties(example_inspect PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multivar "/root/repo/build/examples/multivar_checkpoint" "40000")
set_tests_properties(example_multivar PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
