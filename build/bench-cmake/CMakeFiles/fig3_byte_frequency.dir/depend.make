# Empty dependencies file for fig3_byte_frequency.
# This may be replaced when dependencies are built.
