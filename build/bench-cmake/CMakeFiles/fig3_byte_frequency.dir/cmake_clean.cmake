file(REMOVE_RECURSE
  "../bench/fig3_byte_frequency"
  "../bench/fig3_byte_frequency.pdb"
  "CMakeFiles/fig3_byte_frequency.dir/fig3_byte_frequency.cc.o"
  "CMakeFiles/fig3_byte_frequency.dir/fig3_byte_frequency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_byte_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
