# Empty dependencies file for fig4_end_to_end.
# This may be replaced when dependencies are built.
