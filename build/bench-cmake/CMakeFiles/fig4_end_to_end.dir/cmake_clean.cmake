file(REMOVE_RECURSE
  "../bench/fig4_end_to_end"
  "../bench/fig4_end_to_end.pdb"
  "CMakeFiles/fig4_end_to_end.dir/fig4_end_to_end.cc.o"
  "CMakeFiles/fig4_end_to_end.dir/fig4_end_to_end.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
