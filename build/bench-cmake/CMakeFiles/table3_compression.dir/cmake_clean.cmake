file(REMOVE_RECURSE
  "../bench/table3_compression"
  "../bench/table3_compression.pdb"
  "CMakeFiles/table3_compression.dir/table3_compression.cc.o"
  "CMakeFiles/table3_compression.dir/table3_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
