# Empty compiler generated dependencies file for table3_compression.
# This may be replaced when dependencies are built.
