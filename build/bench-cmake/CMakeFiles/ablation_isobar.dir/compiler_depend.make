# Empty compiler generated dependencies file for ablation_isobar.
# This may be replaced when dependencies are built.
