file(REMOVE_RECURSE
  "../bench/ablation_isobar"
  "../bench/ablation_isobar.pdb"
  "CMakeFiles/ablation_isobar.dir/ablation_isobar.cc.o"
  "CMakeFiles/ablation_isobar.dir/ablation_isobar.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_isobar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
