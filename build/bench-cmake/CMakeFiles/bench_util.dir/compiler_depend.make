# Empty compiler generated dependencies file for bench_util.
# This may be replaced when dependencies are built.
