file(REMOVE_RECURSE
  "../bench/ablation_index_reuse"
  "../bench/ablation_index_reuse.pdb"
  "CMakeFiles/ablation_index_reuse.dir/ablation_index_reuse.cc.o"
  "CMakeFiles/ablation_index_reuse.dir/ablation_index_reuse.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
