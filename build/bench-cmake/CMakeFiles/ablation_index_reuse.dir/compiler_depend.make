# Empty compiler generated dependencies file for ablation_index_reuse.
# This may be replaced when dependencies are built.
