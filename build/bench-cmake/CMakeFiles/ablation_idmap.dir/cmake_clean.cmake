file(REMOVE_RECURSE
  "../bench/ablation_idmap"
  "../bench/ablation_idmap.pdb"
  "CMakeFiles/ablation_idmap.dir/ablation_idmap.cc.o"
  "CMakeFiles/ablation_idmap.dir/ablation_idmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_idmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
