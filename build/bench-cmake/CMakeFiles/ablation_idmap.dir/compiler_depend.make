# Empty compiler generated dependencies file for ablation_idmap.
# This may be replaced when dependencies are built.
