# Empty dependencies file for table_predictive_comparison.
# This may be replaced when dependencies are built.
