file(REMOVE_RECURSE
  "../bench/table_predictive_comparison"
  "../bench/table_predictive_comparison.pdb"
  "CMakeFiles/table_predictive_comparison.dir/table_predictive_comparison.cc.o"
  "CMakeFiles/table_predictive_comparison.dir/table_predictive_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_predictive_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
