file(REMOVE_RECURSE
  "../bench/ablation_chunk_size"
  "../bench/ablation_chunk_size.pdb"
  "CMakeFiles/ablation_chunk_size.dir/ablation_chunk_size.cc.o"
  "CMakeFiles/ablation_chunk_size.dir/ablation_chunk_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
