# Empty compiler generated dependencies file for ablation_chunk_size.
# This may be replaced when dependencies are built.
