# Empty compiler generated dependencies file for microbench_codecs.
# This may be replaced when dependencies are built.
