file(REMOVE_RECURSE
  "../bench/microbench_codecs"
  "../bench/microbench_codecs.pdb"
  "CMakeFiles/microbench_codecs.dir/microbench_codecs.cc.o"
  "CMakeFiles/microbench_codecs.dir/microbench_codecs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
