# Empty compiler generated dependencies file for ablation_compress_location.
# This may be replaced when dependencies are built.
