file(REMOVE_RECURSE
  "../bench/ablation_compress_location"
  "../bench/ablation_compress_location.pdb"
  "CMakeFiles/ablation_compress_location.dir/ablation_compress_location.cc.o"
  "CMakeFiles/ablation_compress_location.dir/ablation_compress_location.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compress_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
