file(REMOVE_RECURSE
  "../bench/checkpoint_utility"
  "../bench/checkpoint_utility.pdb"
  "CMakeFiles/checkpoint_utility.dir/checkpoint_utility.cc.o"
  "CMakeFiles/checkpoint_utility.dir/checkpoint_utility.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
