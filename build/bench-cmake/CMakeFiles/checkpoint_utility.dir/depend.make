# Empty dependencies file for checkpoint_utility.
# This may be replaced when dependencies are built.
