file(REMOVE_RECURSE
  "../bench/model_sweep"
  "../bench/model_sweep.pdb"
  "CMakeFiles/model_sweep.dir/model_sweep.cc.o"
  "CMakeFiles/model_sweep.dir/model_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
