# Empty compiler generated dependencies file for model_sweep.
# This may be replaced when dependencies are built.
