file(REMOVE_RECURSE
  "../bench/ablation_linearization"
  "../bench/ablation_linearization.pdb"
  "CMakeFiles/ablation_linearization.dir/ablation_linearization.cc.o"
  "CMakeFiles/ablation_linearization.dir/ablation_linearization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_linearization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
