# Empty compiler generated dependencies file for ablation_linearization.
# This may be replaced when dependencies are built.
