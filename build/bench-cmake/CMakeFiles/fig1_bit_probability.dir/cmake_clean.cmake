file(REMOVE_RECURSE
  "../bench/fig1_bit_probability"
  "../bench/fig1_bit_probability.pdb"
  "CMakeFiles/fig1_bit_probability.dir/fig1_bit_probability.cc.o"
  "CMakeFiles/fig1_bit_probability.dir/fig1_bit_probability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_bit_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
