# Empty compiler generated dependencies file for fig1_bit_probability.
# This may be replaced when dependencies are built.
