file(REMOVE_RECURSE
  "CMakeFiles/primacy_store.dir/checkpoint_store.cc.o"
  "CMakeFiles/primacy_store.dir/checkpoint_store.cc.o.d"
  "libprimacy_store.a"
  "libprimacy_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
