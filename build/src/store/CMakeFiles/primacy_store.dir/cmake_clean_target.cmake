file(REMOVE_RECURSE
  "libprimacy_store.a"
)
