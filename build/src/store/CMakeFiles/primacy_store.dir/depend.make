# Empty dependencies file for primacy_store.
# This may be replaced when dependencies are built.
