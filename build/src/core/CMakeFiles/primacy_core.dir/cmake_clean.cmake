file(REMOVE_RECURSE
  "CMakeFiles/primacy_core.dir/builtin_codecs.cc.o"
  "CMakeFiles/primacy_core.dir/builtin_codecs.cc.o.d"
  "CMakeFiles/primacy_core.dir/chunk_pipeline.cc.o"
  "CMakeFiles/primacy_core.dir/chunk_pipeline.cc.o.d"
  "CMakeFiles/primacy_core.dir/frequency.cc.o"
  "CMakeFiles/primacy_core.dir/frequency.cc.o.d"
  "CMakeFiles/primacy_core.dir/id_mapper.cc.o"
  "CMakeFiles/primacy_core.dir/id_mapper.cc.o.d"
  "CMakeFiles/primacy_core.dir/in_situ.cc.o"
  "CMakeFiles/primacy_core.dir/in_situ.cc.o.d"
  "CMakeFiles/primacy_core.dir/primacy_codec.cc.o"
  "CMakeFiles/primacy_core.dir/primacy_codec.cc.o.d"
  "CMakeFiles/primacy_core.dir/stream_format.cc.o"
  "CMakeFiles/primacy_core.dir/stream_format.cc.o.d"
  "CMakeFiles/primacy_core.dir/streaming.cc.o"
  "CMakeFiles/primacy_core.dir/streaming.cc.o.d"
  "libprimacy_core.a"
  "libprimacy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
