# Empty dependencies file for primacy_core.
# This may be replaced when dependencies are built.
