file(REMOVE_RECURSE
  "libprimacy_core.a"
)
