
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builtin_codecs.cc" "src/core/CMakeFiles/primacy_core.dir/builtin_codecs.cc.o" "gcc" "src/core/CMakeFiles/primacy_core.dir/builtin_codecs.cc.o.d"
  "/root/repo/src/core/chunk_pipeline.cc" "src/core/CMakeFiles/primacy_core.dir/chunk_pipeline.cc.o" "gcc" "src/core/CMakeFiles/primacy_core.dir/chunk_pipeline.cc.o.d"
  "/root/repo/src/core/frequency.cc" "src/core/CMakeFiles/primacy_core.dir/frequency.cc.o" "gcc" "src/core/CMakeFiles/primacy_core.dir/frequency.cc.o.d"
  "/root/repo/src/core/id_mapper.cc" "src/core/CMakeFiles/primacy_core.dir/id_mapper.cc.o" "gcc" "src/core/CMakeFiles/primacy_core.dir/id_mapper.cc.o.d"
  "/root/repo/src/core/in_situ.cc" "src/core/CMakeFiles/primacy_core.dir/in_situ.cc.o" "gcc" "src/core/CMakeFiles/primacy_core.dir/in_situ.cc.o.d"
  "/root/repo/src/core/primacy_codec.cc" "src/core/CMakeFiles/primacy_core.dir/primacy_codec.cc.o" "gcc" "src/core/CMakeFiles/primacy_core.dir/primacy_codec.cc.o.d"
  "/root/repo/src/core/stream_format.cc" "src/core/CMakeFiles/primacy_core.dir/stream_format.cc.o" "gcc" "src/core/CMakeFiles/primacy_core.dir/stream_format.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/primacy_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/primacy_core.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/primacy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/primacy_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/primacy_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/isobar/CMakeFiles/primacy_isobar.dir/DependInfo.cmake"
  "/root/repo/build/src/deflate/CMakeFiles/primacy_deflate.dir/DependInfo.cmake"
  "/root/repo/build/src/lzfast/CMakeFiles/primacy_lzfast.dir/DependInfo.cmake"
  "/root/repo/build/src/bwt/CMakeFiles/primacy_bwt.dir/DependInfo.cmake"
  "/root/repo/build/src/fpc/CMakeFiles/primacy_fpc.dir/DependInfo.cmake"
  "/root/repo/build/src/fpzip_like/CMakeFiles/primacy_fpzip_like.dir/DependInfo.cmake"
  "/root/repo/build/src/lz77/CMakeFiles/primacy_lz77.dir/DependInfo.cmake"
  "/root/repo/build/src/huffman/CMakeFiles/primacy_huffman.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
