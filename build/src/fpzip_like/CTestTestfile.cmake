# CMake generated Testfile for 
# Source directory: /root/repo/src/fpzip_like
# Build directory: /root/repo/build/src/fpzip_like
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
