file(REMOVE_RECURSE
  "libprimacy_fpzip_like.a"
)
