# Empty compiler generated dependencies file for primacy_fpzip_like.
# This may be replaced when dependencies are built.
