file(REMOVE_RECURSE
  "CMakeFiles/primacy_fpzip_like.dir/fpz_codec.cc.o"
  "CMakeFiles/primacy_fpzip_like.dir/fpz_codec.cc.o.d"
  "libprimacy_fpzip_like.a"
  "libprimacy_fpzip_like.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_fpzip_like.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
