# Empty dependencies file for primacy_model.
# This may be replaced when dependencies are built.
