file(REMOVE_RECURSE
  "CMakeFiles/primacy_model.dir/perf_model.cc.o"
  "CMakeFiles/primacy_model.dir/perf_model.cc.o.d"
  "libprimacy_model.a"
  "libprimacy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
