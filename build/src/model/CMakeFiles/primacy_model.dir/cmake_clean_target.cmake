file(REMOVE_RECURSE
  "libprimacy_model.a"
)
