# Empty dependencies file for primacy_huffman.
# This may be replaced when dependencies are built.
