file(REMOVE_RECURSE
  "CMakeFiles/primacy_huffman.dir/huffman.cc.o"
  "CMakeFiles/primacy_huffman.dir/huffman.cc.o.d"
  "libprimacy_huffman.a"
  "libprimacy_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
