file(REMOVE_RECURSE
  "libprimacy_huffman.a"
)
