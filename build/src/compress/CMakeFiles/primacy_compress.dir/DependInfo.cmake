
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/codec.cc" "src/compress/CMakeFiles/primacy_compress.dir/codec.cc.o" "gcc" "src/compress/CMakeFiles/primacy_compress.dir/codec.cc.o.d"
  "/root/repo/src/compress/frame.cc" "src/compress/CMakeFiles/primacy_compress.dir/frame.cc.o" "gcc" "src/compress/CMakeFiles/primacy_compress.dir/frame.cc.o.d"
  "/root/repo/src/compress/registry.cc" "src/compress/CMakeFiles/primacy_compress.dir/registry.cc.o" "gcc" "src/compress/CMakeFiles/primacy_compress.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/primacy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/primacy_bitstream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
