file(REMOVE_RECURSE
  "libprimacy_compress.a"
)
