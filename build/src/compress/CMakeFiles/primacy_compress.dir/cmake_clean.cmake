file(REMOVE_RECURSE
  "CMakeFiles/primacy_compress.dir/codec.cc.o"
  "CMakeFiles/primacy_compress.dir/codec.cc.o.d"
  "CMakeFiles/primacy_compress.dir/frame.cc.o"
  "CMakeFiles/primacy_compress.dir/frame.cc.o.d"
  "CMakeFiles/primacy_compress.dir/registry.cc.o"
  "CMakeFiles/primacy_compress.dir/registry.cc.o.d"
  "libprimacy_compress.a"
  "libprimacy_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
