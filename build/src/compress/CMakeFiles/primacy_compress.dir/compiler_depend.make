# Empty compiler generated dependencies file for primacy_compress.
# This may be replaced when dependencies are built.
