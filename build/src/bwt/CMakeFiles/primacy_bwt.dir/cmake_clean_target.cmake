file(REMOVE_RECURSE
  "libprimacy_bwt.a"
)
