file(REMOVE_RECURSE
  "CMakeFiles/primacy_bwt.dir/bwt_codec.cc.o"
  "CMakeFiles/primacy_bwt.dir/bwt_codec.cc.o.d"
  "CMakeFiles/primacy_bwt.dir/suffix_array.cc.o"
  "CMakeFiles/primacy_bwt.dir/suffix_array.cc.o.d"
  "CMakeFiles/primacy_bwt.dir/transform.cc.o"
  "CMakeFiles/primacy_bwt.dir/transform.cc.o.d"
  "libprimacy_bwt.a"
  "libprimacy_bwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_bwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
