# Empty dependencies file for primacy_bwt.
# This may be replaced when dependencies are built.
