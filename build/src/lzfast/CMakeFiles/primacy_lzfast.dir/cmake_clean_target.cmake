file(REMOVE_RECURSE
  "libprimacy_lzfast.a"
)
