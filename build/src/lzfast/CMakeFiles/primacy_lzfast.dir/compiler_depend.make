# Empty compiler generated dependencies file for primacy_lzfast.
# This may be replaced when dependencies are built.
