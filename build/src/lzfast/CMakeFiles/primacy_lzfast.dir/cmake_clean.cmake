file(REMOVE_RECURSE
  "CMakeFiles/primacy_lzfast.dir/lzfast.cc.o"
  "CMakeFiles/primacy_lzfast.dir/lzfast.cc.o.d"
  "libprimacy_lzfast.a"
  "libprimacy_lzfast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_lzfast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
