# CMake generated Testfile for 
# Source directory: /root/repo/src/lzfast
# Build directory: /root/repo/build/src/lzfast
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
