file(REMOVE_RECURSE
  "CMakeFiles/primacy_bitstream.dir/bit_io.cc.o"
  "CMakeFiles/primacy_bitstream.dir/bit_io.cc.o.d"
  "CMakeFiles/primacy_bitstream.dir/byte_io.cc.o"
  "CMakeFiles/primacy_bitstream.dir/byte_io.cc.o.d"
  "libprimacy_bitstream.a"
  "libprimacy_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
