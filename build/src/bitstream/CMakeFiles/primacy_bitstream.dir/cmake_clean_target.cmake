file(REMOVE_RECURSE
  "libprimacy_bitstream.a"
)
