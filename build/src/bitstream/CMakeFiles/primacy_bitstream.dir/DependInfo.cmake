
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/bit_io.cc" "src/bitstream/CMakeFiles/primacy_bitstream.dir/bit_io.cc.o" "gcc" "src/bitstream/CMakeFiles/primacy_bitstream.dir/bit_io.cc.o.d"
  "/root/repo/src/bitstream/byte_io.cc" "src/bitstream/CMakeFiles/primacy_bitstream.dir/byte_io.cc.o" "gcc" "src/bitstream/CMakeFiles/primacy_bitstream.dir/byte_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/primacy_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
