# Empty compiler generated dependencies file for primacy_bitstream.
# This may be replaced when dependencies are built.
