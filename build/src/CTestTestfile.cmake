# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("bitstream")
subdirs("huffman")
subdirs("lz77")
subdirs("compress")
subdirs("deflate")
subdirs("lzfast")
subdirs("bwt")
subdirs("fpc")
subdirs("fpzip_like")
subdirs("isobar")
subdirs("datasets")
subdirs("core")
subdirs("store")
subdirs("model")
subdirs("hpcsim")
