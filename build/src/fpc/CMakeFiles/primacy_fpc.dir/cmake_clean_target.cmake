file(REMOVE_RECURSE
  "libprimacy_fpc.a"
)
