# Empty dependencies file for primacy_fpc.
# This may be replaced when dependencies are built.
