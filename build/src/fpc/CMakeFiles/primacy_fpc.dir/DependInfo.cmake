
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpc/fpc_codec.cc" "src/fpc/CMakeFiles/primacy_fpc.dir/fpc_codec.cc.o" "gcc" "src/fpc/CMakeFiles/primacy_fpc.dir/fpc_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/primacy_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/primacy_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/primacy_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
