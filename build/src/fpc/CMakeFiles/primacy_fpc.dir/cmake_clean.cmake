file(REMOVE_RECURSE
  "CMakeFiles/primacy_fpc.dir/fpc_codec.cc.o"
  "CMakeFiles/primacy_fpc.dir/fpc_codec.cc.o.d"
  "libprimacy_fpc.a"
  "libprimacy_fpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_fpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
