# Empty dependencies file for primacy_datasets.
# This may be replaced when dependencies are built.
