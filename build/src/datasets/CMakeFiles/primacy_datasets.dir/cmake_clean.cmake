file(REMOVE_RECURSE
  "CMakeFiles/primacy_datasets.dir/datasets.cc.o"
  "CMakeFiles/primacy_datasets.dir/datasets.cc.o.d"
  "libprimacy_datasets.a"
  "libprimacy_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
