file(REMOVE_RECURSE
  "libprimacy_datasets.a"
)
