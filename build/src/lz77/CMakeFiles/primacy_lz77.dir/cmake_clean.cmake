file(REMOVE_RECURSE
  "CMakeFiles/primacy_lz77.dir/lz77.cc.o"
  "CMakeFiles/primacy_lz77.dir/lz77.cc.o.d"
  "libprimacy_lz77.a"
  "libprimacy_lz77.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_lz77.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
