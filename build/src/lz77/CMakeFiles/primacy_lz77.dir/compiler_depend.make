# Empty compiler generated dependencies file for primacy_lz77.
# This may be replaced when dependencies are built.
