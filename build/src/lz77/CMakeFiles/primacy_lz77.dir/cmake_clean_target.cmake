file(REMOVE_RECURSE
  "libprimacy_lz77.a"
)
