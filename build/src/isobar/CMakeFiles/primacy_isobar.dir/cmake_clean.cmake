file(REMOVE_RECURSE
  "CMakeFiles/primacy_isobar.dir/analyzer.cc.o"
  "CMakeFiles/primacy_isobar.dir/analyzer.cc.o.d"
  "CMakeFiles/primacy_isobar.dir/partitioned_codec.cc.o"
  "CMakeFiles/primacy_isobar.dir/partitioned_codec.cc.o.d"
  "libprimacy_isobar.a"
  "libprimacy_isobar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_isobar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
