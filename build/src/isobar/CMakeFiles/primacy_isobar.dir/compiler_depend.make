# Empty compiler generated dependencies file for primacy_isobar.
# This may be replaced when dependencies are built.
