file(REMOVE_RECURSE
  "libprimacy_isobar.a"
)
