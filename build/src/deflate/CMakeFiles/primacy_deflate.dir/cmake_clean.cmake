file(REMOVE_RECURSE
  "CMakeFiles/primacy_deflate.dir/deflate.cc.o"
  "CMakeFiles/primacy_deflate.dir/deflate.cc.o.d"
  "libprimacy_deflate.a"
  "libprimacy_deflate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_deflate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
