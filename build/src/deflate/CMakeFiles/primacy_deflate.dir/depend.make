# Empty dependencies file for primacy_deflate.
# This may be replaced when dependencies are built.
