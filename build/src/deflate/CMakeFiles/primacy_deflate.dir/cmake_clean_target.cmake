file(REMOVE_RECURSE
  "libprimacy_deflate.a"
)
