# Empty compiler generated dependencies file for primacy_util.
# This may be replaced when dependencies are built.
