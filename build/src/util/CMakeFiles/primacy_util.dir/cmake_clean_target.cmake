file(REMOVE_RECURSE
  "libprimacy_util.a"
)
