file(REMOVE_RECURSE
  "CMakeFiles/primacy_util.dir/byte_matrix.cc.o"
  "CMakeFiles/primacy_util.dir/byte_matrix.cc.o.d"
  "CMakeFiles/primacy_util.dir/error.cc.o"
  "CMakeFiles/primacy_util.dir/error.cc.o.d"
  "CMakeFiles/primacy_util.dir/rng.cc.o"
  "CMakeFiles/primacy_util.dir/rng.cc.o.d"
  "CMakeFiles/primacy_util.dir/stats.cc.o"
  "CMakeFiles/primacy_util.dir/stats.cc.o.d"
  "CMakeFiles/primacy_util.dir/thread_pool.cc.o"
  "CMakeFiles/primacy_util.dir/thread_pool.cc.o.d"
  "libprimacy_util.a"
  "libprimacy_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
