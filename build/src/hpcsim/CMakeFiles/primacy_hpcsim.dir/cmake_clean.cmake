file(REMOVE_RECURSE
  "CMakeFiles/primacy_hpcsim.dir/checkpoint_planner.cc.o"
  "CMakeFiles/primacy_hpcsim.dir/checkpoint_planner.cc.o.d"
  "CMakeFiles/primacy_hpcsim.dir/event_queue.cc.o"
  "CMakeFiles/primacy_hpcsim.dir/event_queue.cc.o.d"
  "CMakeFiles/primacy_hpcsim.dir/resources.cc.o"
  "CMakeFiles/primacy_hpcsim.dir/resources.cc.o.d"
  "CMakeFiles/primacy_hpcsim.dir/staging.cc.o"
  "CMakeFiles/primacy_hpcsim.dir/staging.cc.o.d"
  "libprimacy_hpcsim.a"
  "libprimacy_hpcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primacy_hpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
