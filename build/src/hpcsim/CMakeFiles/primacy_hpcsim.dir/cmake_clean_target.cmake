file(REMOVE_RECURSE
  "libprimacy_hpcsim.a"
)
