# Empty compiler generated dependencies file for primacy_hpcsim.
# This may be replaced when dependencies are built.
