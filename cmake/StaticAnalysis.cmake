# Static-analysis targets. All of them are driver scripts under tools/ so the
# exact file lists and suppressions live in one reviewable place and CI runs
# byte-identical commands to a developer's `cmake --build build --target ...`.
#
#   tidy          clang-tidy (.clang-tidy profile) over src/, examples/, bench/
#                 via compile_commands.json. Skips (successfully, with a
#                 notice) when clang-tidy is not installed.
#   lint          tools/primacy_lint — project-specific invariants clang-tidy
#                 cannot know (byte_io discipline, writer/reader symmetry,
#                 telemetry no-op parity, pool exception containment).
#   check-format  clang-format --dry-run over the tree (check-only). Skips
#                 when clang-format is not installed.
#   static-analysis  umbrella target running all of the above.
#
# `lint` is also registered as a ctest (PrimacyLint) so the invariant gate
# runs in every tier-1 `ctest` invocation, sanitizer jobs included.

find_package(Python3 COMPONENTS Interpreter QUIET)
find_program(PRIMACY_CLANG_TIDY
             NAMES clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17
                   clang-tidy-16 clang-tidy-15)
find_program(PRIMACY_CLANG_FORMAT
             NAMES clang-format clang-format-19 clang-format-18
                   clang-format-17 clang-format-16 clang-format-15)

if(NOT Python3_Interpreter_FOUND)
  message(STATUS "primacy: python3 not found — tidy/lint/check-format targets disabled")
  return()
endif()

if(PRIMACY_CLANG_TIDY)
  add_custom_target(tidy
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/run_tidy.py
            --clang-tidy ${PRIMACY_CLANG_TIDY} -p ${CMAKE_BINARY_DIR}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy over src/ examples/ bench/"
    USES_TERMINAL)
else()
  add_custom_target(tidy
    COMMAND ${CMAKE_COMMAND} -E echo
            "clang-tidy not found -- install clang-tidy to enable this gate"
    COMMENT "clang-tidy unavailable"
    VERBATIM)
endif()

add_custom_target(lint
  COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/primacy_lint src
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  COMMENT "primacy_lint invariant checks"
  USES_TERMINAL)

if(PRIMACY_CLANG_FORMAT)
  add_custom_target(check-format
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/check_format.py
            --clang-format ${PRIMACY_CLANG_FORMAT}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-format check (no files rewritten)"
    USES_TERMINAL)
else()
  add_custom_target(check-format
    COMMAND ${CMAKE_COMMAND} -E echo
            "clang-format not found -- skipping format check"
    COMMENT "clang-format unavailable"
    VERBATIM)
endif()

add_custom_target(static-analysis DEPENDS tidy lint check-format)

if(PRIMACY_BUILD_TESTS)
  add_test(NAME PrimacyLint
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/primacy_lint src
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR})
  # Each rule must fire on its embedded violation fixture — guards against a
  # refactor silently defanging the linter itself.
  add_test(NAME PrimacyLintSelfTest
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/primacy_lint
            --self-test
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR})
  # The /metrics validator CI uses against a live scrape must itself keep
  # accepting the exporter's shapes and rejecting malformed expositions.
  add_test(NAME PromtextSelfTest
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/check_promtext.py
            --self-test
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR})
endif()
